// Command benchdiff is the bench-regression gate: it compares a freshly
// generated benchmark JSON (cmd/experiments -benchjson or -devbenchjson)
// against the committed baseline and fails when the run got slower than
// the configured tolerance. CI wires it as a blocking job (make
// bench-check), so a real regression shows up red and stops a merge.
//
// Usage:
//
//	benchdiff -baseline BENCH_parallel.json -fresh fresh.json [-tolerance 0.15]
//
// The tolerance is a fractional slowdown budget: 0.15 allows the fresh
// run to be up to 15% slower. The default comes from the
// STASHFLASH_BENCH_TOLERANCE environment variable when set (CI knob),
// else 0.15. The gate fails when the suite total exceeds the budget, or
// when any single experiment exceeds twice the budget (single-experiment
// noise is larger than suite noise, so the per-experiment bar is looser);
// experiments under 5ms in the baseline are reported but never fail the
// gate. The parallel schema (workersN_ms), the device schema
// (onfi_ms/direct_ms), the retention schema (lazy_ms/eager_ms, from
// cmd/experiments -retbenchjson), the scheme schema (scheme_ms, from
// cmd/experiments -schemesbenchjson) and the fleet schema (fleet_ms,
// from cmd/experiments -fleetbenchjson) are all understood.
//
// The fleet schema additionally carries a win gate: the baseline's
// win_floor is the minimum multi-tenant batching win (measured ops per
// queue crossing, batched over unbatched, at the largest fan-out) a
// fresh run must reproduce in its max_fan_win — a coalescer that stops
// merging fails the gate no matter how the wall-clock entries look.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// entry carries the per-experiment fields of both benchmark schemas;
// unset fields decode as zero.
type entry struct {
	ID         string  `json:"id"`
	Workers1Ms float64 `json:"workers1_ms"`
	WorkersNMs float64 `json:"workersN_ms"`
	DirectMs   float64 `json:"direct_ms"`
	ONFIMs     float64 `json:"onfi_ms"`
	LazyMs     float64 `json:"lazy_ms"`
	SchemeMs   float64 `json:"scheme_ms"`
	FleetMs    float64 `json:"fleet_ms"`
}

// headlineMs returns the wall-clock number the gate compares: the
// parallel run at full fan-out, the ONFI-backend run for the device
// schema (the slower, more fragile column), the lazy-engine run for the
// retention schema (the column whose speed the engine exists for), or
// the single measured column of the scheme schema.
func (e entry) headlineMs() float64 {
	if e.WorkersNMs > 0 {
		return e.WorkersNMs
	}
	if e.ONFIMs > 0 {
		return e.ONFIMs
	}
	if e.LazyMs > 0 {
		return e.LazyMs
	}
	if e.SchemeMs > 0 {
		return e.SchemeMs
	}
	return e.FleetMs
}

// report is the subset of both benchmark documents the gate reads.
type report struct {
	Scale         string  `json:"scale"`
	Experiments   []entry `json:"experiments"`
	TotalNMs      float64 `json:"total_workersN_ms"`
	TotalONFIMs   float64 `json:"total_onfi_ms"`
	TotalLazyMs   float64 `json:"total_lazy_ms"`
	TotalSchemeMs float64 `json:"total_scheme_ms"`
	TotalFleetMs  float64 `json:"total_fleet_ms"`

	// Fleet-schema win gate: WinFloor is set in the committed baseline,
	// MaxFanWin is what a run measured (see cmd/experiments
	// -fleetbenchjson for the metric's definition).
	WinFloor  float64 `json:"win_floor"`
	MaxFanWin float64 `json:"max_fan_win"`
}

func (r report) totalMs() float64 {
	if r.TotalNMs > 0 {
		return r.TotalNMs
	}
	if r.TotalONFIMs > 0 {
		return r.TotalONFIMs
	}
	if r.TotalLazyMs > 0 {
		return r.TotalLazyMs
	}
	if r.TotalSchemeMs > 0 {
		return r.TotalSchemeMs
	}
	if r.TotalFleetMs > 0 {
		return r.TotalFleetMs
	}
	var t float64
	for _, e := range r.Experiments {
		t += e.headlineMs()
	}
	return t
}

// minGateMs is the baseline floor below which a single experiment is too
// fast to gate on: scheduler noise dominates sub-5ms timings.
const minGateMs = 5.0

// compare applies the gate. It returns one human-readable line per
// comparison and whether the gate failed.
func compare(baseline, fresh report, tol float64) (lines []string, failed bool) {
	base := make(map[string]entry, len(baseline.Experiments))
	for _, e := range baseline.Experiments {
		base[e.ID] = e
	}
	perExpTol := 2 * tol
	for _, f := range fresh.Experiments {
		b, ok := base[f.ID]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-10s new experiment (no baseline), %8.1fms", f.ID, f.headlineMs()))
			continue
		}
		delete(base, f.ID)
		bms, fms := b.headlineMs(), f.headlineMs()
		if bms <= 0 {
			continue
		}
		ratio := fms / bms
		switch {
		case bms < minGateMs:
			lines = append(lines, fmt.Sprintf("%-10s %8.1fms -> %8.1fms (%.2fx) below %gms floor, not gated", f.ID, bms, fms, ratio, minGateMs))
		case ratio > 1+perExpTol:
			failed = true
			lines = append(lines, fmt.Sprintf("%-10s %8.1fms -> %8.1fms (%.2fx) FAIL: exceeds per-experiment budget %.2fx", f.ID, bms, fms, ratio, 1+perExpTol))
		case ratio > 1+tol:
			lines = append(lines, fmt.Sprintf("%-10s %8.1fms -> %8.1fms (%.2fx) WARN: above %.2fx", f.ID, bms, fms, ratio, 1+tol))
		default:
			lines = append(lines, fmt.Sprintf("%-10s %8.1fms -> %8.1fms (%.2fx) ok", f.ID, bms, fms, ratio))
		}
	}
	for id := range base {
		failed = true
		lines = append(lines, fmt.Sprintf("%-10s FAIL: present in baseline but missing from fresh run", id))
	}
	if baseline.WinFloor > 0 {
		verdict := "ok"
		if fresh.MaxFanWin < baseline.WinFloor {
			failed = true
			verdict = "FAIL: below the baseline win floor"
		}
		lines = append(lines, fmt.Sprintf("%-10s %8.2fx floor -> %7.2fx measured %s", "WIN", baseline.WinFloor, fresh.MaxFanWin, verdict))
	}
	bt, ft := baseline.totalMs(), fresh.totalMs()
	if bt > 0 {
		ratio := ft / bt
		verdict := "ok"
		if ratio > 1+tol {
			failed = true
			verdict = fmt.Sprintf("FAIL: exceeds total budget %.2fx", 1+tol)
		}
		lines = append(lines, fmt.Sprintf("%-10s %8.1fms -> %8.1fms (%.2fx) %s", "TOTAL", bt, ft, ratio, verdict))
	}
	return lines, failed
}

// defaultTolerance resolves the budget: $STASHFLASH_BENCH_TOLERANCE when
// parseable, else 0.15.
func defaultTolerance() float64 {
	if v := os.Getenv("STASHFLASH_BENCH_TOLERANCE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
		fmt.Fprintf(os.Stderr, "benchdiff: ignoring unparseable STASHFLASH_BENCH_TOLERANCE=%q\n", v)
	}
	return 0.15
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed benchmark JSON (required)")
	freshPath := flag.String("fresh", "", "freshly generated benchmark JSON (required)")
	tolerance := flag.Float64("tolerance", defaultTolerance(), "fractional slowdown budget (0.15 = 15% slower allowed; default from STASHFLASH_BENCH_TOLERANCE)")
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	lines, failed := compare(baseline, fresh, *tolerance)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		fmt.Printf("benchdiff: REGRESSION against %s (tolerance %.0f%%)\n", *baselinePath, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok against %s (tolerance %.0f%%)\n", *baselinePath, *tolerance*100)
}
