package main

import (
	"strings"
	"testing"
)

func parallelReport(fig2, faults, total float64) report {
	return report{
		Scale: "ci",
		Experiments: []entry{
			{ID: "fig2", Workers1Ms: fig2 * 3, WorkersNMs: fig2},
			{ID: "faults", Workers1Ms: faults * 3, WorkersNMs: faults},
		},
		TotalNMs: total,
	}
}

func hasLine(lines []string, substr string) bool {
	for _, l := range lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := parallelReport(100, 50, 150)
	fresh := parallelReport(110, 55, 165) // 10% slower everywhere
	lines, failed := compare(base, fresh, 0.25)
	if failed {
		t.Fatalf("10%% slowdown failed at 25%% tolerance:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareTotalRegressionFails(t *testing.T) {
	base := parallelReport(100, 50, 150)
	fresh := parallelReport(130, 65, 195) // 30% slower total, per-exp under 2x budget
	lines, failed := compare(base, fresh, 0.25)
	if !failed {
		t.Fatalf("30%% total slowdown passed at 25%% tolerance:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "TOTAL") || !hasLine(lines, "exceeds total budget") {
		t.Errorf("missing total-budget verdict:\n%s", strings.Join(lines, "\n"))
	}
}

func TestComparePerExperimentRegressionFails(t *testing.T) {
	base := parallelReport(100, 50, 150)
	// fig2 balloons 2x (> 1+2*0.25) while the total stays inside budget.
	fresh := report{
		Experiments: []entry{
			{ID: "fig2", WorkersNMs: 200},
			{ID: "faults", WorkersNMs: 10},
		},
		TotalNMs: 170,
	}
	lines, failed := compare(base, fresh, 0.25)
	if !failed {
		t.Fatalf("2x single-experiment slowdown passed:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "per-experiment budget") {
		t.Errorf("missing per-experiment verdict:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareWarnBetweenBudgets(t *testing.T) {
	base := parallelReport(100, 50, 150)
	// fig2 is 40% slower: above tol (25%) but below 2*tol (50%) — warn only,
	// and the total stays inside budget.
	fresh := parallelReport(140, 30, 170)
	lines, failed := compare(base, fresh, 0.25)
	if failed {
		t.Fatalf("warn-band slowdown failed the gate:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "WARN") {
		t.Errorf("missing WARN line:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareTinyExperimentsNotGated(t *testing.T) {
	base := report{
		Experiments: []entry{{ID: "tiny", WorkersNMs: 1}},
		TotalNMs:    1,
	}
	fresh := report{
		Experiments: []entry{{ID: "tiny", WorkersNMs: 4}},
		TotalNMs:    1, // keep the total inside budget; only the floor is under test
	}
	lines, failed := compare(base, fresh, 0.25)
	if failed {
		t.Fatalf("sub-floor experiment failed the gate:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "not gated") {
		t.Errorf("missing floor annotation:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareMissingExperimentFails(t *testing.T) {
	base := parallelReport(100, 50, 150)
	fresh := report{
		Experiments: []entry{{ID: "fig2", WorkersNMs: 100}},
		TotalNMs:    100,
	}
	lines, failed := compare(base, fresh, 0.25)
	if !failed {
		t.Fatalf("missing experiment passed:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "missing from fresh run") {
		t.Errorf("missing missing-experiment verdict:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareDeviceSchema(t *testing.T) {
	base := report{
		Experiments: []entry{{ID: "fig2", DirectMs: 40, ONFIMs: 100}},
		TotalONFIMs: 100,
	}
	fresh := report{
		Experiments: []entry{{ID: "fig2", DirectMs: 40, ONFIMs: 105}},
		TotalONFIMs: 105,
	}
	lines, failed := compare(base, fresh, 0.25)
	if failed {
		t.Fatalf("5%% device-schema slowdown failed:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "105.0ms") {
		t.Errorf("device schema onfi_ms column not used:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareRetentionSchema(t *testing.T) {
	base := report{
		Experiments: []entry{
			{ID: "sweep10y", LazyMs: 80},
			{ID: "bake12mo", LazyMs: 0.01},
		},
		TotalLazyMs: 80,
	}
	fresh := report{
		Experiments: []entry{
			{ID: "sweep10y", LazyMs: 200},
			{ID: "bake12mo", LazyMs: 0.01},
		},
		TotalLazyMs: 200,
	}
	lines, failed := compare(base, fresh, 0.25)
	if !failed {
		t.Fatalf("2.5x lazy-engine slowdown passed:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "below 5ms floor") {
		t.Errorf("sub-floor retention entry should not be gated:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareSchemeSchema(t *testing.T) {
	base := report{
		Experiments: []entry{
			{ID: "vthi/hide", SchemeMs: 100},
			{ID: "womftl/hide", SchemeMs: 50},
		},
		TotalSchemeMs: 150,
	}
	fresh := report{
		Experiments: []entry{
			{ID: "vthi/hide", SchemeMs: 105},
			{ID: "womftl/hide", SchemeMs: 55},
		},
		TotalSchemeMs: 160,
	}
	lines, failed := compare(base, fresh, 0.25)
	if failed {
		t.Fatalf("mild scheme-schema slowdown failed:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "105.0ms") {
		t.Errorf("scheme schema scheme_ms column not used:\n%s", strings.Join(lines, "\n"))
	}
	slow := report{
		Experiments: []entry{
			{ID: "vthi/hide", SchemeMs: 300},
			{ID: "womftl/hide", SchemeMs: 55},
		},
		TotalSchemeMs: 355,
	}
	if _, failed := compare(base, slow, 0.25); !failed {
		t.Error("3x scheme hot-path slowdown passed the gate")
	}
}

func TestCompareFleetSchema(t *testing.T) {
	base := report{
		Experiments: []entry{
			{ID: "fanout16/unbatched", FleetMs: 80},
			{ID: "fanout16/batched", FleetMs: 40},
		},
		TotalFleetMs: 120,
		WinFloor:     2.0,
		MaxFanWin:    15.0,
	}
	fresh := report{
		Experiments: []entry{
			{ID: "fanout16/unbatched", FleetMs: 85},
			{ID: "fanout16/batched", FleetMs: 42},
		},
		TotalFleetMs: 127,
		MaxFanWin:    14.5,
	}
	lines, failed := compare(base, fresh, 0.25)
	if failed {
		t.Fatalf("mild fleet-schema slowdown failed:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "85.0ms") {
		t.Errorf("fleet schema fleet_ms column not used:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "WIN") {
		t.Errorf("win gate not reported:\n%s", strings.Join(lines, "\n"))
	}
	slow := report{
		Experiments: []entry{
			{ID: "fanout16/unbatched", FleetMs: 250},
			{ID: "fanout16/batched", FleetMs: 42},
		},
		TotalFleetMs: 292,
		MaxFanWin:    14.5,
	}
	if _, failed := compare(base, slow, 0.25); !failed {
		t.Error("3x fleet hot-path slowdown passed the gate")
	}
}

// TestCompareFleetWinFloor: a coalescer that stops merging fails the
// gate through the win floor even when every wall-clock entry improves.
func TestCompareFleetWinFloor(t *testing.T) {
	base := report{
		Experiments:  []entry{{ID: "fanout16/batched", FleetMs: 40}},
		TotalFleetMs: 40,
		WinFloor:     2.0,
		MaxFanWin:    15.0,
	}
	broken := report{
		Experiments:  []entry{{ID: "fanout16/batched", FleetMs: 38}},
		TotalFleetMs: 38,
		MaxFanWin:    1.0,
	}
	lines, failed := compare(base, broken, 0.25)
	if !failed {
		t.Fatalf("win collapse passed the gate:\n%s", strings.Join(lines, "\n"))
	}
	if !hasLine(lines, "below the baseline win floor") {
		t.Errorf("missing win-floor verdict:\n%s", strings.Join(lines, "\n"))
	}
	// A baseline without a win floor (the other schemas) never gates wins.
	if _, failed := compare(report{Experiments: base.Experiments, TotalFleetMs: 40}, broken, 0.25); failed {
		t.Error("win gate fired without a baseline win floor")
	}
}

func TestDefaultTolerance(t *testing.T) {
	t.Setenv("STASHFLASH_BENCH_TOLERANCE", "")
	if got := defaultTolerance(); got != 0.15 {
		t.Errorf("defaultTolerance() = %v, want 0.15", got)
	}
	t.Setenv("STASHFLASH_BENCH_TOLERANCE", "0.5")
	if got := defaultTolerance(); got != 0.5 {
		t.Errorf("defaultTolerance() with env 0.5 = %v", got)
	}
	t.Setenv("STASHFLASH_BENCH_TOLERANCE", "bogus")
	if got := defaultTolerance(); got != 0.15 {
		t.Errorf("defaultTolerance() with bogus env = %v, want 0.15", got)
	}
}
