// stashd's serving loop. This file owns the process's non-device
// goroutines (HTTP serving, signal handling) and deliberately does not
// import internal/nand: the layering lint allows goroutines next to
// device handles only inside internal/fleet, and everything here talks
// to chips purely through the fleet façade.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

// run serves the API on addr until SIGINT/SIGTERM, then drains in-flight
// requests and closes the fleet. It returns when shutdown completes.
func run(addr string, s *server) error {
	defer s.close()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.routes()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(lis) }()
	log.Printf("stashd: serving on %s (%d shards, %d spares)",
		lis.Addr(), s.f.Shards(), s.f.SparesLeft())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("stashd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// The listener has drained: every in-flight request completed, so the
	// tenant table and chip state are quiescent — the one moment a
	// consistent restart snapshot can be cut.
	if err := s.persist(); err != nil {
		return fmt.Errorf("persisting state: %w", err)
	}
	return nil
}
