package main

import (
	"bytes"
	"encoding/base64"
	"net/http"
	"testing"

	"stashflash/internal/fleet"
	"stashflash/internal/nand"
)

// newPersistentTestServer is newTestServer with a state directory: the
// first call formats a fresh fleet, later calls restore from dir (the
// "restart").
func newPersistentTestServer(t *testing.T, shards, spares int, faults *nand.FaultConfig, dir string) (*server, http.Handler) {
	t.Helper()
	cfg, metrics := testFleetConfig(shards, spares, faults)
	var (
		f   *fleet.Fleet
		err error
	)
	if fleet.HasState(dir) {
		f, err = fleet.Restore(cfg, dir)
	} else {
		f, err = fleet.New(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(f, metrics, nil, 0, dir)
	if err := s.loadTenants(); err != nil {
		t.Fatal(err)
	}
	return s, s.routes()
}

// shutdownPersist mimics run()'s ordering: snapshot after the (test-)
// traffic has drained, then close the fleet.
func shutdownPersist(t *testing.T, s *server) {
	t.Helper()
	if err := s.persist(); err != nil {
		t.Fatalf("persist: %v", err)
	}
	s.close()
}

// TestRestartRemountsTenants is the acceptance round trip: tenants mount
// and hide, the service persists and "restarts", and each tenant's next
// mount lands on the same shard with every pre-restart hide revealable —
// while before that mount (no key on the server) the volume stays sealed.
func TestRestartRemountsTenants(t *testing.T) {
	dir := t.TempDir()
	s, h := newPersistentTestServer(t, 2, 0, nil, dir)

	alicePay := []byte("alice survives")
	bobPay := []byte("bob too")
	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK || doc["shard"].(float64) != 0 {
		t.Fatalf("alice mount: %d %v", code, doc)
	}
	if code, doc := call(t, h, "POST", "/v1/mount",
		map[string]any{"tenant": "bob", "key": "k2", "scheme": "womftl"}); code != http.StatusOK || doc["shard"].(float64) != 1 {
		t.Fatalf("bob mount: %d %v", code, doc)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, alicePay)); code != http.StatusOK {
		t.Fatalf("alice hide: %d %v", code, doc)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("bob", "k2", 2, bobPay)); code != http.StatusOK {
		t.Fatalf("bob hide: %d %v", code, doc)
	}
	shutdownPersist(t, s)

	// Restart. The tenant table is back but every volume is sealed: the
	// server holds key hashes and an unreadable snapshot, nothing more.
	s2, h2 := newPersistentTestServer(t, 2, 0, nil, dir)
	defer s2.close()
	if code, doc := call(t, h2, "POST", "/v1/reveal", revealReq("alice", "k1", 1)); code != http.StatusServiceUnavailable || kindOf(doc) != "shard_degraded" {
		t.Fatalf("reveal before re-mount: %d %v", code, doc)
	}
	if code, doc := call(t, h2, "POST", "/v1/mount", mountReq("alice", "WRONG")); code != http.StatusForbidden || kindOf(doc) != "wrong_key" {
		t.Fatalf("mount with wrong key after restart: %d %v", code, doc)
	}

	// The real key reopens the volume on the same shard.
	code, doc := call(t, h2, "POST", "/v1/mount", mountReq("alice", "k1"))
	if code != http.StatusOK || doc["shard"].(float64) != 0 || !doc["remounted"].(bool) {
		t.Fatalf("alice re-mount after restart: %d %v", code, doc)
	}
	code, doc = call(t, h2, "POST", "/v1/reveal", revealReq("alice", "k1", 1))
	got, err := base64.StdEncoding.DecodeString(doc["data"].(string))
	if code != http.StatusOK || err != nil || !bytes.Equal(got, alicePay) {
		t.Fatalf("alice pre-restart hide: %d %q (err=%v)", code, got, err)
	}
	// Scheme follows the tenant across the restart.
	code, doc = call(t, h2, "POST", "/v1/mount",
		map[string]any{"tenant": "bob", "key": "k2", "scheme": "womftl"})
	if code != http.StatusOK || doc["shard"].(float64) != 1 || !doc["remounted"].(bool) || doc["scheme"].(string) != "womftl" {
		t.Fatalf("bob re-mount after restart: %d %v", code, doc)
	}
	code, doc = call(t, h2, "POST", "/v1/reveal", revealReq("bob", "k2", 2))
	got, _ = base64.StdEncoding.DecodeString(doc["data"].(string))
	if code != http.StatusOK || !bytes.Equal(got, bobPay) {
		t.Fatalf("bob pre-restart hide: %d %q", code, got)
	}

	// The reopened volume stays writable and a new tenant still fits the
	// untouched capacity math.
	fresh := []byte("post-restart hide")
	if code, doc := call(t, h2, "POST", "/v1/hide", hideReq("alice", "k1", 3, fresh)); code != http.StatusOK {
		t.Fatalf("post-restart hide: %d %v", code, doc)
	}
	code, doc = call(t, h2, "POST", "/v1/reveal", revealReq("alice", "k1", 3))
	got, _ = base64.StdEncoding.DecodeString(doc["data"].(string))
	if code != http.StatusOK || !bytes.Equal(got, fresh) {
		t.Fatalf("post-restart round trip: %d %q", code, got)
	}
}

// TestRestartSurvivesSecondRestart: a tenant that never re-mounts keeps
// its snapshot across ANOTHER persist/restart cycle (the unspent
// snapshot is carried forward, not dropped).
func TestRestartSurvivesSecondRestart(t *testing.T) {
	dir := t.TempDir()
	s, h := newPersistentTestServer(t, 1, 0, nil, dir)
	payload := []byte("twice restarted")
	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, payload)); code != http.StatusOK {
		t.Fatalf("hide: %d %v", code, doc)
	}
	shutdownPersist(t, s)

	s2, _ := newPersistentTestServer(t, 1, 0, nil, dir)
	shutdownPersist(t, s2) // alice never presented her key

	s3, h3 := newPersistentTestServer(t, 1, 0, nil, dir)
	defer s3.close()
	if code, doc := call(t, h3, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK || !doc["remounted"].(bool) {
		t.Fatalf("mount after two restarts: %d %v", code, doc)
	}
	code, doc := call(t, h3, "POST", "/v1/reveal", revealReq("alice", "k1", 1))
	got, _ := base64.StdEncoding.DecodeString(doc["data"].(string))
	if code != http.StatusOK || !bytes.Equal(got, payload) {
		t.Fatalf("hide after two restarts: %d %q", code, got)
	}
}

// TestRestartAfterRemapRejectsStaleSnapshot: the shard remaps to a spare
// AFTER the snapshot was taken (here: after the restart restores it).
// The snapshot describes the dead chip, so the tenant's mount must NOT
// reopen it — a fresh format on the replacement chip is the truth, and
// the pre-restart sector is typed gone, never a wrong read.
func TestRestartAfterRemapRejectsStaleSnapshot(t *testing.T) {
	faults := &nand.FaultConfig{BadBlockFrac: 1e-15}
	dir := t.TempDir()
	s, h := newPersistentTestServer(t, 1, 1, faults, dir)
	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, []byte("on chip 0"))); code != http.StatusOK {
		t.Fatalf("hide: %d %v", code, doc)
	}
	shutdownPersist(t, s)

	s2, h2 := newPersistentTestServer(t, 1, 1, faults, dir)
	defer s2.close()
	// Kill chip 0: the shard remaps to the spare while alice's snapshot
	// still names chip 0.
	if err := s2.f.Exec(0, func(dev nand.LabDevice) error {
		nand.PlanOf(dev).ArmPowerLossAfterPP(0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s2.f.Exec(0, func(dev nand.LabDevice) error {
		return dev.PartialProgram(nand.PageAddr{Block: 0, Page: 0}, []int{0})
	}); err == nil {
		t.Fatal("expected the armed power loss to kill chip 0")
	}
	code, doc := call(t, h2, "POST", "/v1/mount", mountReq("alice", "k1"))
	if code != http.StatusOK || doc["remounted"].(bool) || doc["chip"].(float64) != 1 {
		t.Fatalf("mount after remap: want fresh format on the spare, got %d %v", code, doc)
	}
	if code, doc = call(t, h2, "POST", "/v1/reveal", revealReq("alice", "k1", 1)); code != http.StatusNotFound || kindOf(doc) != "no_data" {
		t.Fatalf("stale sector after remap: %d %v", code, doc)
	}
}

// TestRemapThenRestartKeepsStaleRejection: the chip dies BEFORE the
// snapshot — the persisted row is a bare reservation. After restart the
// data path stays a typed 503 until the tenant re-mounts, and the
// re-mount formats fresh on the replacement chip.
func TestRemapThenRestartKeepsStaleRejection(t *testing.T) {
	faults := &nand.FaultConfig{BadBlockFrac: 1e-15}
	dir := t.TempDir()
	s, h := newPersistentTestServer(t, 1, 1, faults, dir)
	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, []byte("doomed"))); code != http.StatusOK {
		t.Fatalf("hide: %d %v", code, doc)
	}
	if err := s.f.Exec(0, func(dev nand.LabDevice) error {
		nand.PlanOf(dev).ArmPowerLossAfterPP(0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 2, []byte("trigger"))); code != http.StatusServiceUnavailable {
		t.Fatalf("hide on dying chip: %d %v", code, doc)
	}
	shutdownPersist(t, s)

	s2, h2 := newPersistentTestServer(t, 1, 1, faults, dir)
	defer s2.close()
	// The reservation survived, the volume did not: data path is typed
	// unavailable, and the re-mount provisions fresh on the spare.
	if code, doc := call(t, h2, "POST", "/v1/reveal", revealReq("alice", "k1", 1)); code != http.StatusServiceUnavailable || kindOf(doc) != "shard_degraded" {
		t.Fatalf("reveal after remap+restart: %d %v", code, doc)
	}
	code, doc := call(t, h2, "POST", "/v1/mount", mountReq("alice", "k1"))
	if code != http.StatusOK || doc["remounted"].(bool) || doc["chip"].(float64) != 1 {
		t.Fatalf("mount after remap+restart: %d %v", code, doc)
	}
	if code, doc = call(t, h2, "POST", "/v1/reveal", revealReq("alice", "k1", 1)); code != http.StatusNotFound {
		t.Fatalf("dead chip's sector after fresh format: %d %v", code, doc)
	}
}
