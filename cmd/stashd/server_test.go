package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"stashflash/internal/fleet"
	"stashflash/internal/nand"
	"stashflash/internal/obs"
)

// testGeometry mirrors the stegfs test geometry: small enough that a
// mount (full-device format) is fast, large enough for real hidden
// capacity.
func testFleetConfig(shards, spares int, faults *nand.FaultConfig) (fleet.Config, *obs.LabelSet) {
	metrics := obs.NewLabelSet(obs.ChipLabels(shards + spares)...)
	return fleet.Config{
		Shards:  shards,
		Spares:  spares,
		Model:   nand.ModelA().ScaleGeometry(20, 8, 2040),
		Seed:    42,
		Faults:  faults,
		Metrics: metrics,
	}, metrics
}

func newTestServer(t *testing.T, shards, spares int, faults *nand.FaultConfig) (*server, http.Handler) {
	t.Helper()
	cfg, metrics := testFleetConfig(shards, spares, faults)
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(f, metrics, nil, 0, "")
	t.Cleanup(s.close)
	return s, s.routes()
}

// call drives one request through the handler with no real sockets and
// decodes the JSON response.
func call(t *testing.T, h http.Handler, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("%s %s: response is not JSON: %v\n%s", method, path, err, rec.Body.String())
	}
	return rec.Code, doc
}

func mountReq(tenant, key string) map[string]any {
	return map[string]any{"tenant": tenant, "key": key}
}

func hideReq(tenant, key string, sector int, payload []byte) map[string]any {
	return map[string]any{
		"tenant": tenant, "key": key, "sector": sector,
		"data": base64.StdEncoding.EncodeToString(payload),
	}
}

func revealReq(tenant, key string, sector int) map[string]any {
	return map[string]any{"tenant": tenant, "key": key, "sector": sector}
}

// kindOf extracts the typed error kind from an error document.
func kindOf(doc map[string]any) string {
	k, _ := doc["kind"].(string)
	return k
}

func TestMountHideRevealRoundTrip(t *testing.T) {
	_, h := newTestServer(t, 2, 0, nil)

	code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1"))
	if code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}
	if doc["shard"].(float64) != 0 || doc["remounted"].(bool) {
		t.Fatalf("first mount doc: %v", doc)
	}
	secBytes := int(doc["hidden_sector_bytes"].(float64))
	if secBytes <= 0 || int(doc["hidden_capacity"].(float64)) < 2 {
		t.Fatalf("implausible capacity doc: %v", doc)
	}

	payload := []byte("dawn. microfilm")
	if code, doc = call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, payload)); code != http.StatusOK {
		t.Fatalf("hide: %d %v", code, doc)
	}
	code, doc = call(t, h, "POST", "/v1/reveal", revealReq("alice", "k1", 1))
	if code != http.StatusOK {
		t.Fatalf("reveal: %d %v", code, doc)
	}
	got, err := base64.StdEncoding.DecodeString(doc["data"].(string))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reveal returned %q, want %q (err=%v)", got, payload, err)
	}

	// Re-mount with the same key reuses the volume and the payload survives.
	if code, doc = call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK || !doc["remounted"].(bool) {
		t.Fatalf("re-mount: %d %v", code, doc)
	}
	code, doc = call(t, h, "POST", "/v1/reveal", revealReq("alice", "k1", 1))
	got, _ = base64.StdEncoding.DecodeString(doc["data"].(string))
	if code != http.StatusOK || !bytes.Equal(got, payload) {
		t.Fatalf("payload lost across re-mount: %d %q", code, got)
	}

	// A second tenant lands on the next shard with its own silicon.
	if code, doc = call(t, h, "POST", "/v1/mount", mountReq("bob", "k2")); code != http.StatusOK || doc["shard"].(float64) != 1 {
		t.Fatalf("bob mount: %d %v", code, doc)
	}
}

func TestTypedAPIErrors(t *testing.T) {
	_, h := newTestServer(t, 1, 0, nil)
	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}

	for _, tc := range []struct {
		name string
		path string
		body map[string]any
		code int
		kind string
	}{
		{"wrong key", "/v1/reveal", revealReq("alice", "WRONG", 1), http.StatusForbidden, "wrong_key"},
		{"wrong key mount", "/v1/mount", mountReq("alice", "WRONG"), http.StatusForbidden, "wrong_key"},
		{"unknown tenant", "/v1/reveal", revealReq("mallory", "k", 1), http.StatusNotFound, "unknown_tenant"},
		{"no data yet", "/v1/reveal", revealReq("alice", "k1", 2), http.StatusNotFound, "no_data"},
		{"reserved sector", "/v1/hide", hideReq("alice", "k1", 0, []byte("x")), http.StatusBadRequest, "bad_sector"},
		{"sector out of range", "/v1/hide", hideReq("alice", "k1", 1<<20, []byte("x")), http.StatusBadRequest, "bad_sector"},
		{"missing key", "/v1/hide", map[string]any{"tenant": "alice"}, http.StatusBadRequest, "bad_request"},
		{"bad base64", "/v1/hide", map[string]any{"tenant": "alice", "key": "k1", "sector": 1, "data": "@@"}, http.StatusBadRequest, "bad_request"},
		{"second tenant no capacity", "/v1/mount", mountReq("bob", "k2"), http.StatusConflict, "no_capacity"},
	} {
		code, doc := call(t, h, "POST", tc.path, tc.body)
		if code != tc.code || kindOf(doc) != tc.kind {
			t.Errorf("%s: got %d/%s, want %d/%s (%v)", tc.name, code, kindOf(doc), tc.code, tc.kind, doc)
		}
	}
}

func TestHealthAndStatsDocuments(t *testing.T) {
	_, h := newTestServer(t, 2, 1, nil)
	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}

	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, []byte("stats fodder"))); code != http.StatusOK {
		t.Fatalf("hide: %d %v", code, doc)
	}

	code, doc := call(t, h, "GET", "/v1/health", nil)
	if code != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("health: %d %v", code, doc)
	}
	if doc["spares_left"].(float64) != 1 || doc["tenants"].(float64) != 1 {
		t.Fatalf("health counters: %v", doc)
	}
	if len(doc["shards"].([]any)) != 2 {
		t.Fatalf("health shards: %v", doc["shards"])
	}

	code, doc = call(t, h, "GET", "/v1/stats", nil)
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, doc)
	}
	if doc["schema"] != statsSchema {
		t.Fatalf("stats schema = %v, want %q", doc["schema"], statsSchema)
	}
	chips, ok := doc["chips"].(map[string]any)
	if !ok || len(chips) != 3 {
		t.Fatalf("stats chips: %v", doc["chips"])
	}
	// The mounted tenant's hide landed on chip 0: its per-chip metrics
	// recorded programs, while the idle spare stayed silent.
	chip0 := chips["chip0"].(map[string]any)
	if chip0["schema"] != obs.SnapshotSchema {
		t.Fatalf("per-chip snapshot schema = %v", chip0["schema"])
	}
	if ops := chip0["ops"].(map[string]any); ops["program"] == nil {
		t.Fatalf("chip0 recorded no programs after a format: %v", ops)
	}
	if ops, ok := chips["chip2"].(map[string]any)["ops"].(map[string]any); ok {
		if _, loaded := ops["program"]; loaded {
			t.Fatalf("idle spare chip2 recorded programs")
		}
	}
}

// soakSeconds resolves the soak duration: 2s keeps CI fast, and the
// STASHFLASH_SOAK_SECONDS knob stretches the same test for long local
// shakeouts.
func soakSeconds(t *testing.T) time.Duration {
	if v := os.Getenv("STASHFLASH_SOAK_SECONDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad STASHFLASH_SOAK_SECONDS=%q", v)
		}
		return time.Duration(n) * time.Second
	}
	return 2 * time.Second
}

// TestConcurrentTenantSoak is the -race soak of the acceptance criteria:
// concurrent tenants hammer mount/hide/reveal through the handler (no
// real sockets) while other goroutines poll stats and health, and every
// revealed payload must be exactly the last hidden one.
func TestConcurrentTenantSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	const tenants = 6
	_, h := newTestServer(t, tenants, 1, nil)
	deadline := time.Now().Add(soakSeconds(t))

	// payloadFor derives the deterministic payload of (tenant, sector,
	// generation) so readers can verify bytes without sharing state.
	// Hidden sectors are small (payloads ride voltage margins), so sizes
	// sweep 1..18 bytes.
	payloadFor := func(tenant, sector, gen int) []byte {
		sum := sha256.Sum256([]byte(fmt.Sprintf("soak/%d/%d/%d", tenant, sector, gen)))
		return sum[:1+(tenant+sector*7+gen)%18]
	}

	var wg sync.WaitGroup
	errc := make(chan error, tenants+2)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name, key := fmt.Sprintf("tenant%d", i), fmt.Sprintf("key%d", i)
			if code, doc := call(t, h, "POST", "/v1/mount", mountReq(name, key)); code != http.StatusOK {
				errc <- fmt.Errorf("tenant %d mount: %d %v", i, code, doc)
				return
			}
			for gen := 0; time.Now().Before(deadline); gen++ {
				sector := 1 + gen%3
				want := payloadFor(i, sector, gen)
				if code, doc := call(t, h, "POST", "/v1/hide", hideReq(name, key, sector, want)); code != http.StatusOK {
					errc <- fmt.Errorf("tenant %d hide gen %d: %d %v", i, gen, code, doc)
					return
				}
				code, doc := call(t, h, "POST", "/v1/reveal", revealReq(name, key, sector))
				if code != http.StatusOK {
					errc <- fmt.Errorf("tenant %d reveal gen %d: %d %v", i, gen, code, doc)
					return
				}
				got, err := base64.StdEncoding.DecodeString(doc["data"].(string))
				if err != nil || !bytes.Equal(got, want) {
					errc <- fmt.Errorf("tenant %d gen %d: revealed %d bytes != hidden %d bytes", i, gen, len(got), len(want))
					return
				}
			}
		}(i)
	}
	// Observability hammer: stats and health must stay consistent JSON
	// under full data-path load.
	for _, path := range []string{"/v1/stats", "/v1/health"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if code, doc := call(t, h, "GET", path, nil); code != http.StatusOK {
					errc <- fmt.Errorf("%s under load: %d %v", path, code, doc)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestDegradationThroughAPI walks a chip death end to end at the HTTP
// surface: a latched power loss mid-hide must come back as a typed 503
// (never a wrong read), and a re-mount must land the tenant on the spare
// chip with full service restored.
func TestDegradationThroughAPI(t *testing.T) {
	// A practically-zero fault probability attaches a plan (for the
	// power-loss trigger) without spontaneous faults.
	s, h := newTestServer(t, 2, 1, &nand.FaultConfig{BadBlockFrac: 1e-15})

	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}
	payload := []byte("pre-death payload")
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, payload)); code != http.StatusOK {
		t.Fatalf("hide: %d %v", code, doc)
	}

	// Latch a power loss on alice's chip: the next partial-program pulse
	// kills it mid-operation.
	if err := s.f.Exec(0, func(dev nand.LabDevice) error {
		nand.PlanOf(dev).ArmPowerLossAfterPP(0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 2, []byte("doomed")))
	if code != http.StatusServiceUnavailable || kindOf(doc) != "shard_degraded" {
		t.Fatalf("hide on dying chip: %d %s %v", code, kindOf(doc), doc)
	}

	// Until the re-mount, data-path requests stay a typed 503.
	code, doc = call(t, h, "POST", "/v1/reveal", revealReq("alice", "k1", 1))
	if code != http.StatusServiceUnavailable || kindOf(doc) != "shard_degraded" {
		t.Fatalf("reveal after death: %d %v", code, doc)
	}
	if code, doc = call(t, h, "GET", "/v1/health", nil); doc["spares_left"].(float64) != 0 {
		t.Fatalf("spare not consumed: %d %v", code, doc)
	}

	// Re-mount provisions on the spare (chip index 2 behind shard 0) —
	// the old payloads died with the old chip, fresh ones round-trip.
	code, doc = call(t, h, "POST", "/v1/mount", mountReq("alice", "k1"))
	if code != http.StatusOK || doc["remounted"].(bool) || doc["chip"].(float64) != 2 || doc["shard"].(float64) != 0 {
		t.Fatalf("re-mount after death: %d %v", code, doc)
	}
	fresh := []byte("post-remap payload")
	if code, doc = call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, fresh)); code != http.StatusOK {
		t.Fatalf("hide on spare: %d %v", code, doc)
	}
	code, doc = call(t, h, "POST", "/v1/reveal", revealReq("alice", "k1", 1))
	got, _ := base64.StdEncoding.DecodeString(doc["data"].(string))
	if code != http.StatusOK || !bytes.Equal(got, fresh) {
		t.Fatalf("round trip on spare: %d %q", code, got)
	}

	// A tenant on the healthy shard is untouched throughout.
	if code, doc = call(t, h, "POST", "/v1/mount", mountReq("bob", "k2")); code != http.StatusOK || doc["shard"].(float64) != 1 {
		t.Fatalf("bob mount: %d %v", code, doc)
	}

	// Kill the spare too: with no spares left the shard is out of
	// service and every request reports fleet_exhausted.
	if err := s.f.Exec(0, func(dev nand.LabDevice) error {
		nand.PlanOf(dev).ArmPowerLossAfterPP(0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if code, doc = call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, []byte("doomed again"))); code != http.StatusServiceUnavailable {
		t.Fatalf("hide on dying spare: %d %v", code, doc)
	}
	code, doc = call(t, h, "POST", "/v1/mount", mountReq("alice", "k1"))
	if code != http.StatusServiceUnavailable || kindOf(doc) != "fleet_exhausted" {
		t.Fatalf("mount on exhausted shard: %d %s", code, kindOf(doc))
	}
	if code, doc = call(t, h, "GET", "/v1/health", nil); doc["status"] != "degraded" {
		t.Fatalf("health after exhaustion: %d %v", code, doc)
	}
}

// TestMountSchemeSelection covers the scheme field of mount requests: a
// named scheme formats with that backend and round-trips payloads, the
// default reports vthi, and an unregistered name is a typed 400.
func TestMountSchemeSelection(t *testing.T) {
	_, h := newTestServer(t, 2, 0, nil)

	code, doc := call(t, h, "POST", "/v1/mount",
		map[string]any{"tenant": "alice", "key": "k1", "scheme": "womftl"})
	if code != http.StatusOK || doc["scheme"].(string) != "womftl" {
		t.Fatalf("womftl mount: %d %v", code, doc)
	}
	payload := []byte("generation channel")
	if code, doc = call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, payload)); code != http.StatusOK {
		t.Fatalf("hide on womftl volume: %d %v", code, doc)
	}
	code, doc = call(t, h, "POST", "/v1/reveal", revealReq("alice", "k1", 1))
	got, err := base64.StdEncoding.DecodeString(doc["data"].(string))
	if code != http.StatusOK || err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("reveal on womftl volume: %d %q (err=%v)", code, got, err)
	}

	// Re-mounting with the same scheme reuses the volume; naming a
	// different scheme reformats the shard instead.
	if code, doc = call(t, h, "POST", "/v1/mount",
		map[string]any{"tenant": "alice", "key": "k1", "scheme": "womftl"}); code != http.StatusOK || !doc["remounted"].(bool) {
		t.Fatalf("womftl re-mount: %d %v", code, doc)
	}
	if code, doc = call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK || doc["remounted"].(bool) || doc["scheme"].(string) != "vthi" {
		t.Fatalf("scheme-switch mount: %d %v", code, doc)
	}

	// Default mounts report the vthi scheme.
	if code, doc = call(t, h, "POST", "/v1/mount", mountReq("bob", "k2")); code != http.StatusOK || doc["scheme"].(string) != "vthi" {
		t.Fatalf("default mount: %d %v", code, doc)
	}

	// Unknown scheme: typed 400, no tenant state created.
	code, doc = call(t, h, "POST", "/v1/mount",
		map[string]any{"tenant": "carol", "key": "k3", "scheme": "nope"})
	if code != http.StatusBadRequest || kindOf(doc) != "unknown_scheme" {
		t.Fatalf("unknown scheme: %d %v", code, doc)
	}
	if code, doc = call(t, h, "POST", "/v1/reveal", revealReq("carol", "k3", 1)); kindOf(doc) != "unknown_tenant" {
		t.Fatalf("failed mount leaked tenant state: %d %v", code, doc)
	}
}
