// Command stashd serves steganographic volumes over a sharded fleet of
// simulated NAND chips: the "service" face of the repository, sized for
// tens to hundreds of chips behind one HTTP JSON API.
//
// Usage:
//
//	stashd [-addr :8080] [-chips 16] [-spares 2] [-model a|b]
//	       [-blocks 20 -pages 8 -pagebytes 2040] [-seed 1]
//	       [-backend direct|onfi] [-hidden-sectors N]
//	       [-program-fail P -erase-fail P -badblock-frac F -dead-blocks N]
//	       [-max-inflight-shard N] [-max-inflight N]
//	       [-batch-ops N -batch-window D] [-state DIR]
//	       [-debug-addr :6060]
//
// With -state DIR, shutdown persists the fleet (chip images + routing)
// and the tenant table (reservations and sealed volume snapshots — key
// hashes only, never keys) into DIR, and startup restores from it when
// present: tenants re-mount onto the same shards and pre-restart hides
// survive.
//
// API (JSON bodies; see DESIGN.md §15 for the full table):
//
//	GET  /v1/health  fleet/shard health
//	GET  /v1/stats   versioned stats document with per-chip metrics
//	POST /v1/mount   {"tenant","key"} provision/reopen a hidden volume
//	POST /v1/hide    {"tenant","key","sector","data"} store a payload
//	POST /v1/reveal  {"tenant","key","sector"} read a payload back
//
// Like server.go, this file imports nand (models, fault templates) and
// therefore must not start goroutines; serving lives in run.go.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"stashflash/internal/fleet"
	"stashflash/internal/nand"
	"stashflash/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		chips     = flag.Int("chips", 16, "number of primary chips (one shard each)")
		spares    = flag.Int("spares", 2, "standby chips for degraded shards")
		model     = flag.String("model", "a", "chip model: a or b")
		blocks    = flag.Int("blocks", 20, "blocks per chip")
		pages     = flag.Int("pages", 8, "pages per block")
		pageBytes = flag.Int("pagebytes", 2040, "bytes per page")
		seed      = flag.Uint64("seed", 1, "fleet seed (chips derive per-chip streams)")
		backend   = flag.String("backend", "direct", "device backend: direct or onfi")
		hidden    = flag.Int("hidden-sectors", 0, "hidden sectors per volume (0 = geometry default)")

		programFail  = flag.Float64("program-fail", 0, "per-op program status-FAIL probability")
		eraseFail    = flag.Float64("erase-fail", 0, "per-op erase status-FAIL probability")
		badBlockFrac = flag.Float64("badblock-frac", 0, "fraction of blocks that wear out early")
		deadBlocks   = flag.Int("dead-blocks", 0, "grown-bad-block retirement limit (0 default, <0 never)")

		maxInflightShard = flag.Int("max-inflight-shard", 64, "admission budget per shard (0 = unlimited)")
		maxInflight      = flag.Int("max-inflight", 512, "admission budget fleet-wide (0 = unlimited)")
		batchOps         = flag.Int("batch-ops", 0, "coalesce up to N fleet ops per chip-queue crossing (0 = off)")
		batchWindow      = flag.Duration("batch-window", 0, "flush deadline for a part-filled batch (0 = immediate)")

		stateDir  = flag.String("state", "", "restart-persistence directory; empty = volatile")
		debugAddr = flag.String("debug-addr", "", "debug server (pprof, expvar, /debug/metrics); empty = off")
	)
	flag.Parse()

	cfg, metrics, err := buildConfig(*chips, *spares, *model, *blocks, *pages, *pageBytes,
		*seed, *backend, *programFail, *eraseFail, *badBlockFrac, *deadBlocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stashd:", err)
		os.Exit(2)
	}
	fstats := &obs.FleetStats{}
	cfg.Stats = fstats
	cfg.MaxInflightShard = *maxInflightShard
	cfg.MaxInflightFleet = *maxInflight
	if *batchOps > 0 {
		cfg.Batching = &fleet.Batching{MaxOps: *batchOps, Window: *batchWindow}
	}
	var f *fleet.Fleet
	if *stateDir != "" && fleet.HasState(*stateDir) {
		f, err = fleet.Restore(cfg, *stateDir)
		if err == nil {
			log.Printf("stashd: restored fleet state from %s", *stateDir)
		}
	} else {
		f, err = fleet.New(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stashd:", err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		lis, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			log.Fatalf("stashd: debug server: %v", err)
		}
		log.Printf("stashd: debug server on %s", lis.Addr())
	}
	srv := newServer(f, metrics, fstats, *hidden, *stateDir)
	if err := srv.loadTenants(); err != nil {
		log.Fatalf("stashd: %v", err)
	}
	if err := run(*addr, srv); err != nil {
		log.Fatalf("stashd: %v", err)
	}
}

// buildConfig assembles the fleet configuration plus its per-chip metric
// label set from the command line.
func buildConfig(chips, spares int, model string, blocks, pages, pageBytes int,
	seed uint64, backend string, programFail, eraseFail, badBlockFrac float64,
	deadBlocks int) (fleet.Config, *obs.LabelSet, error) {

	var m nand.Model
	switch model {
	case "a":
		m = nand.ModelA()
	case "b":
		m = nand.ModelB()
	default:
		return fleet.Config{}, nil, fmt.Errorf("unknown model %q (a or b)", model)
	}
	m = m.ScaleGeometry(blocks, pages, pageBytes)

	cfg := fleet.Config{
		Shards:         chips,
		Spares:         spares,
		Model:          m,
		Seed:           seed,
		Backend:        backend,
		DeadBlockLimit: deadBlocks,
	}
	if programFail > 0 || eraseFail > 0 || badBlockFrac > 0 {
		cfg.Faults = &nand.FaultConfig{
			ProgramFailProb: programFail,
			EraseFailProb:   eraseFail,
			BadBlockFrac:    badBlockFrac,
		}
	}
	metrics := obs.NewLabelSet(obs.ChipLabels(cfg.ChipCount())...)
	cfg.Metrics = metrics
	return cfg, metrics, nil
}
