// stashd's HTTP layer. This file touches nand.Device handles inside
// fleet closures and therefore — per the goroutine-ownership rule the
// layering lint enforces — must never start a goroutine itself: every
// device-touching closure runs on the owning chip's queue goroutine
// inside internal/fleet, and the HTTP serving goroutines live in run.go,
// which does not import nand.
package main

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"stashflash/internal/core"
	"stashflash/internal/fleet"
	"stashflash/internal/nand"
	"stashflash/internal/obs"
	"stashflash/internal/stegfs"

	// Register the hiding schemes mount requests can name.
	_ "stashflash/internal/core/vthi"
	_ "stashflash/internal/core/womftl"
)

// statsSchema versions the /v1/stats document; bump on incompatible
// shape changes so scrapers fail loudly instead of misparsing.
const statsSchema = "stashflash-stashd-stats/v1"

// errStaleVolume reports a volume whose chip was retired between the
// tenant's mount and this request: the cached stegfs.Volume wraps the
// dead chip's device and must not be driven from the replacement chip's
// goroutine. The tenant re-mounts to provision on the spare.
var errStaleVolume = errors.New("stashd: tenant volume belongs to a retired chip; re-mount required")

// tenant is one keyed hidden volume on its own dedicated shard. A
// stegfs.Create formats the whole chip, so tenants never share silicon:
// the shard is allocated at first mount and stays with the tenant for
// the life of the process (remaps replace the chip, not the shard).
type tenant struct {
	name     string
	shard    int
	chip     int // chip the volume was created on; guards against stale use
	scheme   string
	keyHash  [32]byte
	vol      *stegfs.Volume
	mounting bool // a (re)mount is formatting the shard right now
	// hiddenCap and hiddenSB cache the volume's capacity numbers so the
	// handler goroutine never calls Volume methods (the volume lives on
	// the chip goroutine).
	hiddenCap int
	hiddenSB  int
	// lens remembers each written sector's payload length so reveal can
	// return the exact bytes (hidden sectors are stored padded). It is a
	// session cache: after a re-mount, reveal returns full padded sectors.
	lens map[int]int
	// saved carries a restart-persisted volume snapshot (FTL map + lens
	// cache) until the tenant presents its key again: the next mount
	// reopens the volume from it instead of formatting, as long as the
	// shard still routes to the chip the snapshot was taken on.
	saved *savedVolume
}

// server multiplexes tenants onto the fleet. Handlers never touch a
// device directly: all device work is submitted to the owning shard.
type server struct {
	f             *fleet.Fleet
	metrics       *obs.LabelSet
	fstats        *obs.FleetStats
	hiddenSectors int
	stateDir      string // "" = no restart persistence
	start         time.Time

	mu      sync.Mutex
	tenants map[string]*tenant
}

func newServer(f *fleet.Fleet, metrics *obs.LabelSet, fstats *obs.FleetStats, hiddenSectors int, stateDir string) *server {
	return &server{
		f:             f,
		metrics:       metrics,
		fstats:        fstats,
		hiddenSectors: hiddenSectors,
		stateDir:      stateDir,
		start:         time.Now(),
		tenants:       make(map[string]*tenant),
	}
}

// close releases the fleet (and with it every chip goroutine).
func (s *server) close() { s.f.Close() }

// deriveKey expands a tenant's API key into an independent 32-byte
// volume key per domain (master, public cover).
func deriveKey(domain, name, key string) []byte {
	sum := sha256.Sum256([]byte("stashd/" + domain + "/" + name + "\x00" + key))
	return sum[:]
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/mount", s.handleMount)
	mux.HandleFunc("POST /v1/hide", s.handleHide)
	mux.HandleFunc("POST /v1/reveal", s.handleReveal)
	return mux
}

// apiError is the uniform error document: kind is machine-matchable,
// error is for humans.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, kind string, err error) {
	writeJSON(w, code, apiError{Error: err.Error(), Kind: kind})
}

// writeOpErr maps a device-path error onto the API's typed vocabulary.
// Degradation is a 503 the client recovers from by re-mounting (spare
// available) or not at all (fleet exhausted) — never a silent wrong read.
func writeOpErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, fleet.ErrFleetExhausted):
		writeErr(w, http.StatusServiceUnavailable, "fleet_exhausted", err)
	case errors.Is(err, fleet.ErrShardDegraded), errors.Is(err, errStaleVolume):
		writeErr(w, http.StatusServiceUnavailable, "shard_degraded", err)
	case errors.Is(err, fleet.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, "shutting_down", err)
	case errors.Is(err, fleet.ErrOverloaded):
		// Admission control said no: the inflight budget is spent. The
		// client backs off and retries — nothing was enqueued or dropped.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "overloaded", err)
	case errors.Is(err, stegfs.ErrHiddenInvalid):
		writeErr(w, http.StatusNotFound, "no_data", err)
	case errors.Is(err, stegfs.ErrHiddenRange), errors.Is(err, stegfs.ErrSectorReserved):
		writeErr(w, http.StatusBadRequest, "bad_sector", err)
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err)
	}
}

type authedRequest struct {
	Tenant string `json:"tenant"`
	Key    string `json:"key"`
	Scheme string `json:"scheme,omitempty"` // hiding scheme for mount (default vthi)
	Sector int    `json:"sector,omitempty"`
	Data   string `json:"data,omitempty"` // base64 payload (hide only)
}

func decodeBody(w http.ResponseWriter, r *http.Request, into *authedRequest) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if into.Tenant == "" {
		return errors.New("missing tenant name")
	}
	if into.Key == "" {
		return errors.New("missing tenant key")
	}
	return nil
}

// volumeHandle is a consistent snapshot of a tenant's mounted volume:
// the volume pointer plus the chip it was created on, taken under the
// server lock so a concurrent re-mount cannot tear it.
type volumeHandle struct {
	t    *tenant
	vol  *stegfs.Volume
	chip int
}

type mountResponse struct {
	Tenant            string `json:"tenant"`
	Shard             int    `json:"shard"`
	Chip              int    `json:"chip"`
	Scheme            string `json:"scheme"`
	HiddenCapacity    int    `json:"hidden_capacity"`
	HiddenSectorBytes int    `json:"hidden_sector_bytes"`
	Remounted         bool   `json:"remounted"`
}

func (s *server) handleMount(w http.ResponseWriter, r *http.Request) {
	var req authedRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	schemeName := req.Scheme
	if schemeName == "" {
		schemeName = "vthi"
	}
	schemeInfo, err := core.SchemeByName(schemeName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "unknown_scheme", err)
		return
	}
	s.mu.Lock()
	t, exists := s.tenants[req.Tenant]
	if exists && t.keyHash != sha256.Sum256([]byte(req.Key)) {
		s.mu.Unlock()
		writeErr(w, http.StatusForbidden, "wrong_key", errors.New("stashd: wrong key for tenant"))
		return
	}
	if t != nil {
		if t.mounting {
			s.mu.Unlock()
			writeErr(w, http.StatusConflict, "mount_in_progress",
				errors.New("stashd: a mount for this tenant is already running"))
			return
		}
		if t.vol != nil && t.scheme == schemeName {
			// Reuse the mounted volume only while its chip still backs
			// the shard; a remap since mount means the volume (and its
			// payloads) died with the old chip. A mount naming a different
			// scheme falls through to a fresh format instead.
			if cur, err := s.f.ShardChip(t.shard); err == nil && cur == t.chip {
				resp := mountResponse{
					Tenant: t.name, Shard: t.shard, Chip: t.chip, Scheme: t.scheme,
					HiddenCapacity: t.hiddenCap, HiddenSectorBytes: t.hiddenSB,
					Remounted: true,
				}
				s.mu.Unlock()
				writeJSON(w, http.StatusOK, resp)
				return
			}
		}
		if t.vol != nil {
			t.vol, t.lens = nil, nil
		}
		t.mounting = true
	} else {
		// New tenant: reserve the lowest free shard. The reservation is
		// the tenant record itself, so racing mounts of other tenants
		// pick other shards.
		used := make(map[int]bool, len(s.tenants))
		for _, tt := range s.tenants {
			used[tt.shard] = true
		}
		shard := -1
		for i := 0; i < s.f.Shards(); i++ {
			if !used[i] {
				shard = i
				break
			}
		}
		if shard < 0 {
			s.mu.Unlock()
			writeErr(w, http.StatusConflict, "no_capacity",
				fmt.Errorf("stashd: all %d shards are allocated", s.f.Shards()))
			return
		}
		t = &tenant{
			name:     req.Tenant,
			shard:    shard,
			keyHash:  sha256.Sum256([]byte(req.Key)),
			mounting: true,
		}
		s.tenants[req.Tenant] = t
	}
	shard := t.shard
	isNew := !exists
	// A restart-persisted snapshot reopens the volume instead of
	// formatting — but only with the scheme it was saved under and only
	// while the shard still routes to the chip it was saved on (checked
	// inside the closure; a remap while the service was down means the
	// snapshot describes dead silicon and a fresh format is the truth).
	reopen := t.saved
	wantChip := t.chip
	if reopen != nil && t.scheme != schemeName {
		reopen = nil
	}
	s.mu.Unlock()

	cfg := stegfs.DefaultConfig(s.f.Geometry())
	cfg.Scheme = schemeInfo.New
	if s.hiddenSectors > 0 {
		cfg.HiddenSectors = s.hiddenSectors
	}
	master := deriveKey("master", req.Tenant, req.Key)
	public := deriveKey("public", req.Tenant, req.Key)
	var (
		vol           *stegfs.Volume
		onChip        int
		capSec, secSB int
		reopened      bool
	)
	err = s.f.ExecOn(shard, func(chip int, dev nand.LabDevice) error {
		var (
			v    *stegfs.Volume
			cerr error
		)
		if reopen != nil && chip == wantChip {
			v, cerr = stegfs.Open(dev, master, public, cfg, reopen.ftl)
			reopened = cerr == nil
		} else {
			v, cerr = stegfs.Create(dev, master, public, cfg)
		}
		if cerr != nil {
			return cerr
		}
		vol, onChip = v, chip
		capSec, secSB = v.HiddenCapacity(), v.HiddenSectorBytes()
		return nil
	})
	s.mu.Lock()
	t.mounting = false
	if err != nil {
		// A brand-new tenant whose format failed releases its shard; an
		// established tenant keeps it (its payloads may still be live).
		if isNew && s.tenants[req.Tenant] == t {
			delete(s.tenants, req.Tenant)
		}
		s.mu.Unlock()
		writeOpErr(w, err)
		return
	}
	t.chip = onChip
	t.vol = vol
	t.scheme = schemeName
	t.hiddenCap, t.hiddenSB = capSec, secSB
	t.lens = make(map[int]int)
	if reopened {
		for sec, n := range reopen.lens {
			t.lens[sec] = n
		}
	}
	// Whatever happened — reopened, chip moved, scheme changed — the
	// snapshot is spent: the volume now live (or freshly formatted) is
	// the authority.
	t.saved = nil
	resp := mountResponse{
		Tenant: t.name, Shard: t.shard, Chip: t.chip, Scheme: t.scheme,
		HiddenCapacity: t.hiddenCap, HiddenSectorBytes: t.hiddenSB,
		Remounted: reopened,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// authedVolume resolves and authenticates the tenant for a data-path
// request and snapshots its volume handle, writing the error response
// itself when it returns nil.
func (s *server) authedVolume(w http.ResponseWriter, req *authedRequest) *volumeHandle {
	s.mu.Lock()
	t, ok := s.tenants[req.Tenant]
	if !ok {
		s.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown_tenant",
			fmt.Errorf("stashd: tenant %q not mounted", req.Tenant))
		return nil
	}
	if t.keyHash != sha256.Sum256([]byte(req.Key)) {
		s.mu.Unlock()
		writeErr(w, http.StatusForbidden, "wrong_key", errors.New("stashd: wrong key for tenant"))
		return nil
	}
	if t.mounting {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "mount_in_progress",
			errors.New("stashd: a mount for this tenant is already running"))
		return nil
	}
	if t.vol == nil {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "shard_degraded", errStaleVolume)
		return nil
	}
	h := &volumeHandle{t: t, vol: t.vol, chip: t.chip}
	s.mu.Unlock()
	return h
}

// execVolume runs fn against the snapshotted volume on the owning chip's
// goroutine, refusing to touch a volume whose chip was retired. On a
// degradation (or staleness) verdict the tenant's volume is dropped so
// the next mount re-provisions on the replacement chip.
func (s *server) execVolume(h *volumeHandle, fn func(v *stegfs.Volume) error) error {
	err := s.f.ExecOn(h.t.shard, func(execChip int, _ nand.LabDevice) error {
		if execChip != h.chip {
			return errStaleVolume
		}
		return fn(h.vol)
	})
	if err != nil && (errors.Is(err, fleet.ErrShardDegraded) || errors.Is(err, errStaleVolume)) {
		s.mu.Lock()
		if h.t.vol == h.vol {
			h.t.vol, h.t.lens = nil, nil
		}
		s.mu.Unlock()
	}
	return err
}

func (s *server) handleHide(w http.ResponseWriter, r *http.Request) {
	var req authedRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	payload, err := base64.StdEncoding.DecodeString(req.Data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Errorf("data is not base64: %w", err))
		return
	}
	h := s.authedVolume(w, &req)
	if h == nil {
		return
	}
	err = s.execVolume(h, func(v *stegfs.Volume) error {
		if len(payload) > v.HiddenSectorBytes() {
			return stegfs.ErrHiddenRange
		}
		if werr := v.HiddenWrite(req.Sector, payload); werr != nil {
			return werr
		}
		return v.Sync()
	})
	if err != nil {
		writeOpErr(w, err)
		return
	}
	s.mu.Lock()
	if h.t.vol == h.vol && h.t.lens != nil {
		h.t.lens[req.Sector] = len(payload)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant": h.t.name, "sector": req.Sector, "bytes": len(payload),
	})
}

func (s *server) handleReveal(w http.ResponseWriter, r *http.Request) {
	var req authedRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	h := s.authedVolume(w, &req)
	if h == nil {
		return
	}
	var payload []byte
	err := s.execVolume(h, func(v *stegfs.Volume) error {
		data, rerr := v.HiddenRead(req.Sector)
		if rerr != nil {
			return rerr
		}
		payload = data
		return nil
	})
	if err != nil {
		writeOpErr(w, err)
		return
	}
	s.mu.Lock()
	if h.t.vol == h.vol {
		if n, ok := h.t.lens[req.Sector]; ok && n <= len(payload) {
			payload = payload[:n]
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"tenant": h.t.name, "sector": req.Sector,
		"data": base64.StdEncoding.EncodeToString(payload),
	})
}

type healthResponse struct {
	Status        string              `json:"status"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Shards        []fleet.ShardStatus `json:"shards"`
	SparesLeft    int                 `json:"spares_left"`
	Tenants       int                 `json:"tenants"`
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.f.Status()
	status := "ok"
	for _, row := range st {
		if row.Chip < 0 {
			status = "degraded"
		}
	}
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Shards:        st,
		SparesLeft:    s.f.SparesLeft(),
		Tenants:       n,
	})
}

type statsResponse struct {
	Schema        string                  `json:"schema"`
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Tenants       int                     `json:"tenants"`
	SparesLeft    int                     `json:"spares_left"`
	Shards        []fleet.ShardStatus     `json:"shards"`
	Fleet         *obs.FleetSnapshot      `json:"fleet,omitempty"`
	Chips         map[string]obs.Snapshot `json:"chips,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	resp := statsResponse{
		Schema:        statsSchema,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Tenants:       n,
		SparesLeft:    s.f.SparesLeft(),
		Shards:        s.f.Status(),
	}
	if s.fstats != nil {
		snap := s.fstats.Snapshot()
		resp.Fleet = &snap
	}
	if s.metrics != nil {
		resp.Chips = s.metrics.Snapshots()
	}
	writeJSON(w, http.StatusOK, resp)
}
