package main

import (
	"testing"
)

func TestBuildConfig(t *testing.T) {
	cfg, metrics, err := buildConfig(16, 2, "a", 20, 8, 2040, 7, "onfi", 0.01, 0.02, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 16 || cfg.Spares != 2 || cfg.ChipCount() != 18 {
		t.Fatalf("fleet sizing: %+v", cfg)
	}
	if cfg.Model.Blocks != 20 || cfg.Model.PagesPerBlock != 8 || cfg.Model.PageBytes != 2040 {
		t.Fatalf("geometry not scaled: %+v", cfg.Model.Geometry)
	}
	if cfg.Backend != "onfi" || cfg.Seed != 7 || cfg.DeadBlockLimit != 3 {
		t.Fatalf("knobs not plumbed: %+v", cfg)
	}
	if cfg.Faults == nil || cfg.Faults.ProgramFailProb != 0.01 ||
		cfg.Faults.EraseFailProb != 0.02 || cfg.Faults.BadBlockFrac != 0.1 {
		t.Fatalf("fault template not plumbed: %+v", cfg.Faults)
	}
	if metrics == nil || metrics.Len() != 18 || cfg.Metrics != metrics {
		t.Fatalf("metrics label set not wired: %v", metrics)
	}

	// Fault-free flags must leave Faults nil so chips skip the plan
	// entirely (a zero-prob plan is equivalent but wasteful).
	cfg, _, err = buildConfig(2, 0, "b", 8, 4, 512, 1, "direct", 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != nil {
		t.Fatalf("fault-free config still carries a template: %+v", cfg.Faults)
	}
	if cfg.Model.Name == "" {
		t.Fatal("model B lost its name")
	}

	if _, _, err := buildConfig(2, 0, "z", 8, 4, 512, 1, "direct", 0, 0, 0, 0); err == nil {
		t.Fatal("unknown model accepted")
	}
}
