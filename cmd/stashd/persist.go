// stashd's restart persistence: the tenant table rides alongside the
// fleet state so a restarted service puts every tenant back on the shard
// it reserved, and a re-mount with the same key reopens the same volume
// (pre-restart hides intact) instead of reformatting.
//
// What is saved per tenant: the shard reservation, the chip the volume
// lives on, the scheme name, the SHA-256 hash of the API key, the cached
// capacity numbers, the reveal-trim length cache, and the volume's FTL
// snapshot. What is NEVER saved: the key itself, or anything derived
// from it that could open the volume — a restarted stashd holds sealed
// state it cannot read until the tenant presents the key again, exactly
// the deniability posture the rest of the stack keeps.
//
// Like server.go, this file runs device work only inside fleet closures
// and must not start goroutines (layering lint).
package main

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"stashflash/internal/fleet"
	"stashflash/internal/ftl"
	"stashflash/internal/nand"
)

// tenantTableSchema versions tenants.gob; a mismatch refuses the load
// rather than misinterpreting an old layout.
const tenantTableSchema = "stashflash-stashd-tenants/v1"

// savedVolume is the reopenable half of a persisted tenant: the FTL map
// snapshot plus the reveal-trim cache, held until the tenant's next
// mount proves the key.
type savedVolume struct {
	ftl  ftl.State
	lens map[int]int
}

// savedTenant is one row of the persisted tenant table.
type savedTenant struct {
	Name      string
	Shard     int
	Chip      int
	Scheme    string
	KeyHash   [32]byte
	HiddenCap int
	HiddenSB  int
	Lens      map[int]int
	FTL       *ftl.State // nil: the tenant held only a reservation (no live volume)
}

// tenantTable is the tenants.gob document.
type tenantTable struct {
	Schema  string
	Tenants []savedTenant
}

func tenantTablePath(dir string) string { return filepath.Join(dir, "tenants.gob") }

// persist writes the tenant table and then the fleet state into
// s.stateDir. Call only after the HTTP listener has drained and before
// close: each live volume is synced and snapshotted on its own chip
// goroutine, then the chips are imaged, so the two halves agree.
func (s *server) persist() error {
	if s.stateDir == "" {
		return nil
	}
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })

	table := tenantTable{Schema: tenantTableSchema}
	for _, t := range tenants {
		s.mu.Lock()
		row := savedTenant{
			Name: t.name, Shard: t.shard, Chip: t.chip, Scheme: t.scheme,
			KeyHash: t.keyHash, HiddenCap: t.hiddenCap, HiddenSB: t.hiddenSB,
		}
		vol, chip, saved := t.vol, t.chip, t.saved
		lens := make(map[int]int, len(t.lens))
		for sec, n := range t.lens {
			lens[sec] = n
		}
		s.mu.Unlock()
		switch {
		case vol != nil:
			var st ftl.State
			err := s.f.ExecOn(t.shard, func(execChip int, _ nand.LabDevice) error {
				if execChip != chip {
					return errStaleVolume
				}
				if serr := vol.Sync(); serr != nil {
					return serr
				}
				st = vol.FTLState()
				return nil
			})
			switch {
			case err == nil:
				row.FTL, row.Lens = &st, lens
			case errors.Is(err, fleet.ErrShardDegraded), errors.Is(err, errStaleVolume),
				errors.Is(err, fleet.ErrFleetExhausted):
				// The volume died with its chip; persist the reservation only.
			default:
				return fmt.Errorf("stashd: snapshotting tenant %q: %w", t.name, err)
			}
		case saved != nil:
			// The tenant never re-mounted since the last restore: carry the
			// unspent snapshot forward untouched.
			st := saved.ftl
			row.FTL, row.Lens = &st, saved.lens
		}
		table.Tenants = append(table.Tenants, row)
	}

	if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
		return err
	}
	path := tenantTablePath(s.stateDir)
	tmp, err := os.CreateTemp(s.stateDir, ".tmp-tenants-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(table); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return s.f.Save(s.stateDir)
}

// loadTenants populates the tenant table from s.stateDir. Volumes stay
// unmounted (no keys are stored); each tenant's snapshot waits on its
// saved field until the tenant mounts again. A missing table is an empty
// one — a fresh state directory starts clean.
func (s *server) loadTenants() error {
	if s.stateDir == "" {
		return nil
	}
	file, err := os.Open(tenantTablePath(s.stateDir))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer file.Close()
	var table tenantTable
	if err := gob.NewDecoder(file).Decode(&table); err != nil {
		return fmt.Errorf("stashd: parsing tenant table: %w", err)
	}
	if table.Schema != tenantTableSchema {
		return fmt.Errorf("stashd: tenant table schema %q, want %q", table.Schema, tenantTableSchema)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, row := range table.Tenants {
		if row.Shard < 0 || row.Shard >= s.f.Shards() {
			return fmt.Errorf("stashd: tenant %q on shard %d outside the fleet", row.Name, row.Shard)
		}
		t := &tenant{
			name: row.Name, shard: row.Shard, chip: row.Chip, scheme: row.Scheme,
			keyHash: row.KeyHash, hiddenCap: row.HiddenCap, hiddenSB: row.HiddenSB,
		}
		if row.FTL != nil {
			t.saved = &savedVolume{ftl: *row.FTL, lens: row.Lens}
		}
		s.tenants[row.Name] = t
	}
	return nil
}
