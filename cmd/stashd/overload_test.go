package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stashflash/internal/fleet"
	"stashflash/internal/nand"
	"stashflash/internal/obs"
)

// newBudgetedTestServer builds a server over a fleet with admission
// budgets and fleet-wide stats wired, mirroring main.go's assembly.
func newBudgetedTestServer(t *testing.T, shards, maxShard, maxFleet int) (*server, http.Handler, *obs.FleetStats) {
	t.Helper()
	cfg, metrics := testFleetConfig(shards, 0, nil)
	fstats := &obs.FleetStats{}
	cfg.Stats = fstats
	cfg.MaxInflightShard = maxShard
	cfg.MaxInflightFleet = maxFleet
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(f, metrics, fstats, 0, "")
	t.Cleanup(s.close)
	return s, s.routes(), fstats
}

// callRec is call with access to the response headers.
func callRec(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("%s %s: response is not JSON: %v\n%s", method, path, err, rec.Body.String())
	}
	return rec, doc
}

// blockShard parks a closure on the shard's chip goroutine while holding
// one admitted slot, returning a release func. It unblocks the caller
// only once the closure is running (the slot is genuinely held).
func blockShard(t *testing.T, s *server, shard int) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.f.Exec(shard, func(nand.LabDevice) error {
			close(entered)
			<-gate
			return nil
		})
	}()
	<-entered
	return func() {
		close(gate)
		wg.Wait()
	}
}

// TestOverloadReturns429 drives the admission budget to exhaustion
// through the HTTP surface: the overflow request is a typed 429 with a
// Retry-After hint — returned immediately, never enqueued, never hung —
// and the reject shows up in the stats document's fleet section and the
// per-shard gauges. Releasing the budget restores service with no
// residue.
func TestOverloadReturns429(t *testing.T) {
	s, h, fstats := newBudgetedTestServer(t, 1, 0, 1)

	if code, doc := call(t, h, "POST", "/v1/mount", mountReq("alice", "k1")); code != http.StatusOK {
		t.Fatalf("mount: %d %v", code, doc)
	}
	release := blockShard(t, s, 0)

	rec, doc := callRec(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, []byte("over budget")))
	if rec.Code != http.StatusTooManyRequests || kindOf(doc) != "overloaded" {
		t.Fatalf("hide over budget: %d %s %v", rec.Code, kindOf(doc), doc)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}

	// The stats document carries the admission counters.
	_, sdoc := call(t, h, "GET", "/v1/stats", nil)
	fdoc, ok := sdoc["fleet"].(map[string]any)
	if !ok {
		t.Fatalf("stats document has no fleet section: %v", sdoc)
	}
	if fdoc["schema"] != obs.FleetStatsSchema {
		t.Fatalf("fleet stats schema = %v, want %q", fdoc["schema"], obs.FleetStatsSchema)
	}
	if fdoc["admission_rejects"].(float64) < 1 || fdoc["inflight"].(float64) != 1 {
		t.Fatalf("fleet stats after reject: %v", fdoc)
	}
	shard0 := sdoc["shards"].([]any)[0].(map[string]any)
	if shard0["admission_rejects"].(float64) < 1 {
		t.Fatalf("shard gauge missed the reject: %v", shard0)
	}

	release()
	if got := fstats.Snapshot().Inflight; got != 0 {
		t.Fatalf("inflight after release: %d, want 0", got)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, []byte("after backoff"))); code != http.StatusOK {
		t.Fatalf("hide after release: %d %v", code, doc)
	}
}

// TestPerShardBudgetIsolatesTenants: one tenant saturating its shard's
// budget must not consume another tenant's admission capacity.
func TestPerShardBudgetIsolatesTenants(t *testing.T) {
	s, h, _ := newBudgetedTestServer(t, 2, 1, 0)
	for _, m := range []map[string]any{mountReq("alice", "k1"), mountReq("bob", "k2")} {
		if code, doc := call(t, h, "POST", "/v1/mount", m); code != http.StatusOK {
			t.Fatalf("mount: %d %v", code, doc)
		}
	}
	release := blockShard(t, s, 0)
	defer release()

	if rec, doc := callRec(t, h, "POST", "/v1/hide", hideReq("alice", "k1", 1, []byte("x"))); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated shard: %d %v", rec.Code, doc)
	}
	if code, doc := call(t, h, "POST", "/v1/hide", hideReq("bob", "k2", 1, []byte("unaffected"))); code != http.StatusOK {
		t.Fatalf("bob behind his own budget: %d %v", code, doc)
	}
}

// TestGracefulShutdownDrainsInflight pins run()'s shutdown ordering over
// real sockets: a request already admitted to a chip queue completes
// with its real answer — never shutting_down, never a dropped
// connection — before Shutdown returns and the fleet closes.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	cfg, metrics := testFleetConfig(1, 0, nil)
	fstats := &obs.FleetStats{}
	cfg.Stats = fstats
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(f, metrics, fstats, 0, "")
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.routes()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(lis) }()
	base := "http://" + lis.Addr().String()

	post := func(path string, body map[string]any) (int, map[string]any, error) {
		raw, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return 0, nil, err
		}
		return resp.StatusCode, doc, nil
	}
	if code, doc, err := post("/v1/mount", mountReq("alice", "k1")); err != nil || code != http.StatusOK {
		t.Fatalf("mount: %d %v (err=%v)", code, doc, err)
	}

	// Park the chip goroutine so the next hide is pinned in flight.
	release := blockShard(t, s, 0)
	type result struct {
		code int
		kind string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		code, doc, err := post("/v1/hide", hideReq("alice", "k1", 1, []byte("drain me")))
		resc <- result{code: code, kind: kindOf(doc), err: err}
	}()
	// The hide is admitted once fleet inflight reaches 2 (the parked
	// closure plus the hide itself).
	for deadline := time.Now().Add(10 * time.Second); fstats.Snapshot().Inflight < 2; {
		if time.Now().After(deadline) {
			t.Fatal("hide never reached the chip queue")
		}
		time.Sleep(100 * time.Microsecond)
	}

	shutDone := make(chan error, 1)
	go func() { shutDone <- hs.Shutdown(context.Background()) }()
	select {
	case err := <-shutDone:
		t.Fatalf("shutdown completed with a request in flight (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}

	release()
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight hide dropped during shutdown: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight hide answered %d/%s during shutdown, want 200", res.code, res.kind)
	}
	<-serveDone
	// Only now — listener drained — does run() close the fleet.
	s.close()
}
