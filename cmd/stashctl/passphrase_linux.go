//go:build linux

package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"syscall"
	"unsafe"
)

// readPassphrase prompts on stderr and reads one line from stdin with
// terminal echo disabled, so the secret never appears on screen or in
// scrollback. When stdin is not a terminal (piped or scripted input) it
// falls back to a plain line read with no prompt state to restore.
func readPassphrase(prompt string) (string, error) {
	fd := int(os.Stdin.Fd())
	var saved syscall.Termios
	if err := ioctlTermios(fd, syscall.TCGETS, &saved); err != nil {
		return readLine()
	}
	noEcho := saved
	noEcho.Lflag &^= syscall.ECHO
	noEcho.Lflag |= syscall.ICANON | syscall.ISIG
	fmt.Fprint(os.Stderr, prompt)
	if err := ioctlTermios(fd, syscall.TCSETS, &noEcho); err != nil {
		return "", fmt.Errorf("disabling terminal echo: %w", err)
	}
	defer func() {
		ioctlTermios(fd, syscall.TCSETS, &saved)
		fmt.Fprintln(os.Stderr)
	}()
	return readLine()
}

func readLine() (string, error) {
	line, err := bufio.NewReader(os.Stdin).ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func ioctlTermios(fd int, req uintptr, t *syscall.Termios) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd), req, uintptr(unsafe.Pointer(t)))
	if errno != 0 {
		return errno
	}
	return nil
}
