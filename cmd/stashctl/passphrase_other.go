//go:build !linux

package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// readPassphrase prompts on stderr and reads one line from stdin. Echo
// suppression is Linux-only (termios); other platforms get a plain read.
func readPassphrase(prompt string) (string, error) {
	fmt.Fprint(os.Stderr, prompt)
	line, err := bufio.NewReader(os.Stdin).ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
