// Command stashctl operates a simulated VT-HI-capable flash device stored
// as an image file: create a device, store public data, hide and reveal
// secret payloads, and inspect the device — the host-software role of the
// paper's prototype.
//
// Usage:
//
//	stashctl init   -image dev.img [-model a|b] [-blocks 64 -pages 16 -pagebytes 4512] [-seed 1]
//	stashctl write  -image dev.img -block B -page P (-msg "text" | -rand)
//	stashctl read   -image dev.img -block B -page P [-n len]
//	stashctl hide   -image dev.img -key SECRET -block B -page P -msg "text" [-scheme vthi|womftl|...] [-config robust|standard|enhanced]
//	stashctl reveal -image dev.img -key SECRET -block B -page P -n len [-scheme vthi|womftl|...] [-config robust|standard|enhanced]
//	stashctl erase  -image dev.img -block B
//	stashctl probe  -image dev.img -block B -page P
//	stashctl stats  -image dev.img [-json] [-debug-addr localhost:6060]
//
// Every command drives the device through the observability decorator
// (internal/obs); "stats -json" emits the device inventory, the
// persisted operation ledger, and the per-operation metrics snapshot of
// this invocation as one JSON document. "stats -debug-addr" serves
// net/http/pprof and expvar until interrupted.
//
// Hiding commands select their backend with -scheme (any registered
// core.Scheme name; the legacy -config flag maps onto the matching vthi
// entry). When -key is omitted the secret is prompted for on the
// controlling terminal with echo disabled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"os/signal"
	"strings"

	"stashflash/internal/core"
	"stashflash/internal/nand"

	// Register the hiding schemes the -scheme flag can name.
	_ "stashflash/internal/core/vthi"
	_ "stashflash/internal/core/womftl"

	"stashflash/internal/obs"
	"stashflash/internal/stats"
)

// metrics collects the device operations of this invocation; every
// command wraps its chip in the observability decorator so the stats
// command (and future long-running modes) can export them.
var metrics = obs.NewCollector(0)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "init":
		err = cmdInit(args)
	case "write":
		err = cmdWrite(args)
	case "read":
		err = cmdRead(args)
	case "hide":
		err = cmdHide(args)
	case "reveal":
		err = cmdReveal(args)
	case "erase":
		err = cmdErase(args)
	case "probe":
		err = cmdProbe(args)
	case "stats":
		err = cmdStats(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "stashctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stashctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `stashctl — operate a simulated VT-HI flash device image
commands: init, write, read, hide, reveal, erase, probe, stats
run "stashctl <cmd> -h" for per-command flags`)
}

func loadChip(path string) (*nand.Chip, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nand.Load(f)
}

// loadDevice opens an image and returns the instrumented device to drive
// plus the underlying chip (needed only to save the image back).
func loadDevice(path string) (*obs.Device, *nand.Chip, error) {
	chip, err := loadChip(path)
	if err != nil {
		return nil, nil, err
	}
	return metrics.Wrap(chip), chip, nil
}

// imageSaver is the persistence capability stashctl needs from a device;
// the simulator chip provides it, keeping the rest of the tool against
// the device interfaces.
type imageSaver interface {
	Save(w io.Writer) error
}

func saveChip(path string, c imageSaver) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	image := fs.String("image", "", "device image path (required)")
	model := fs.String("model", "a", "chip model: a or b")
	blocks := fs.Int("blocks", 64, "number of blocks")
	pages := fs.Int("pages", 16, "pages per block")
	pageBytes := fs.Int("pagebytes", 4512, "bytes per page")
	seed := fs.Uint64("seed", 1, "physical sample seed")
	fs.Parse(args)
	if *image == "" {
		return fmt.Errorf("init: -image is required")
	}
	var m nand.Model
	switch *model {
	case "a":
		m = nand.ModelA()
	case "b":
		m = nand.ModelB()
	default:
		return fmt.Errorf("init: unknown model %q", *model)
	}
	m = m.ScaleGeometry(*blocks, *pages, *pageBytes)
	chip := nand.NewChip(m, *seed)
	if err := saveChip(*image, chip); err != nil {
		return err
	}
	fmt.Printf("initialised %s: %s, %d blocks x %d pages x %d bytes (%.1f MiB)\n",
		*image, m.Name, *blocks, *pages, *pageBytes,
		float64(m.TotalBytes())/(1<<20))
	return nil
}

// pageIOFlags holds the flags shared by page-level commands.
type pageIOFlags struct {
	image  *string
	block  *int
	page   *int
	key    *string
	scheme *string
	config *string
}

func pageFlags(fs *flag.FlagSet, withKey bool) pageIOFlags {
	p := pageIOFlags{
		image:  fs.String("image", "", "device image path (required)"),
		block:  fs.Int("block", 0, "block number"),
		page:   fs.Int("page", 0, "page number"),
		scheme: fs.String("scheme", "", "hiding scheme (default vthi; one of "+strings.Join(core.SchemeNames(), ", ")+")"),
	}
	if withKey {
		p.key = fs.String("key", "", "hiding master secret (prompted without echo when omitted)")
		p.config = fs.String("config", "robust", "VT-HI config: standard, enhanced, robust (legacy alias for -scheme vthi-<config>)")
	}
	return p
}

func (p pageIOFlags) validate(withKey bool) error {
	if *p.image == "" {
		return fmt.Errorf("-image is required")
	}
	if withKey && *p.key == "" {
		pass, err := readPassphrase("hiding master secret: ")
		if err != nil {
			return fmt.Errorf("reading passphrase: %w", err)
		}
		if pass == "" {
			return fmt.Errorf("-key is required (or enter a passphrase at the prompt)")
		}
		*p.key = pass
	}
	return nil
}

// schemeName resolves the -scheme/-config pair: an explicit -scheme wins;
// otherwise the legacy -config name maps onto its vthi registry entry.
func (p pageIOFlags) schemeName() string {
	if p.scheme != nil && *p.scheme != "" {
		return *p.scheme
	}
	if p.config != nil {
		switch *p.config {
		case "", "robust":
			return "vthi"
		default:
			return "vthi-" + *p.config
		}
	}
	return "vthi"
}

// newScheme builds the selected hiding scheme over a device.
func (p pageIOFlags) newScheme(dev nand.Device, master []byte) (core.Scheme, error) {
	info, err := core.SchemeByName(p.schemeName())
	if err != nil {
		return nil, err
	}
	return info.New(dev, master)
}

func (p pageIOFlags) addr() nand.PageAddr {
	return nand.PageAddr{Block: *p.block, Page: *p.page}
}

// publicScheme builds the layout-only pipeline for public I/O over any
// device the selected scheme supports. The master key is irrelevant for
// public operations; any value yields the same public layout.
func (p pageIOFlags) publicScheme(dev nand.Device) (core.Scheme, error) {
	return p.newScheme(dev, []byte("public"))
}

func cmdWrite(args []string) error {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	p := pageFlags(fs, false)
	msg := fs.String("msg", "", "public data (zero-padded to the page)")
	random := fs.Bool("rand", false, "fill the page with random data")
	seed := fs.Uint64("seed", 0, "seed for -rand")
	fs.Parse(args)
	if err := p.validate(false); err != nil {
		return err
	}
	dev, chip, err := loadDevice(*p.image)
	if err != nil {
		return err
	}
	h, err := p.publicScheme(dev)
	if err != nil {
		return err
	}
	data := make([]byte, h.PublicDataBytes())
	if *random {
		rng := rand.New(rand.NewPCG(*seed, 0xdead))
		for i := range data {
			data[i] = byte(rng.IntN(256))
		}
	} else {
		copy(data, *msg)
	}
	if err := h.WritePage(p.addr(), data); err != nil {
		return err
	}
	if err := saveChip(*p.image, chip); err != nil {
		return err
	}
	fmt.Printf("wrote %d public bytes to %v\n", len(data), p.addr())
	return nil
}

func cmdRead(args []string) error {
	fs := flag.NewFlagSet("read", flag.ExitOnError)
	p := pageFlags(fs, false)
	n := fs.Int("n", 64, "bytes to print")
	fs.Parse(args)
	if err := p.validate(false); err != nil {
		return err
	}
	dev, _, err := loadDevice(*p.image)
	if err != nil {
		return err
	}
	h, err := p.publicScheme(dev)
	if err != nil {
		return err
	}
	data, corrected, err := h.ReadPublic(p.addr())
	if err != nil {
		return err
	}
	if *n > len(data) {
		*n = len(data)
	}
	fmt.Printf("public data at %v (ECC corrected %d symbols):\n%q\n", p.addr(), corrected, data[:*n])
	return nil
}

func cmdHide(args []string) error {
	fs := flag.NewFlagSet("hide", flag.ExitOnError)
	p := pageFlags(fs, true)
	msg := fs.String("msg", "", "hidden payload (required)")
	epoch := fs.Uint64("epoch", 0, "embedding epoch")
	fs.Parse(args)
	if err := p.validate(true); err != nil {
		return err
	}
	if *msg == "" {
		return fmt.Errorf("hide: -msg is required")
	}
	dev, chip, err := loadDevice(*p.image)
	if err != nil {
		return err
	}
	h, err := p.newScheme(dev, []byte(*p.key))
	if err != nil {
		return err
	}
	if len(*msg) > h.HiddenPayloadBytes() {
		return fmt.Errorf("hide: payload %d bytes exceeds page capacity %d", len(*msg), h.HiddenPayloadBytes())
	}
	st, err := h.Hide(p.addr(), []byte(*msg), *epoch)
	if err != nil {
		return err
	}
	if err := saveChip(*p.image, chip); err != nil {
		return err
	}
	fmt.Printf("hid %d bytes in %v (%d cells, %d PP steps)\n", len(*msg), p.addr(), st.Cells, st.Steps)
	return nil
}

func cmdReveal(args []string) error {
	fs := flag.NewFlagSet("reveal", flag.ExitOnError)
	p := pageFlags(fs, true)
	n := fs.Int("n", 0, "hidden payload length (required)")
	epoch := fs.Uint64("epoch", 0, "embedding epoch")
	fs.Parse(args)
	if err := p.validate(true); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("reveal: -n is required")
	}
	dev, chip, err := loadDevice(*p.image)
	if err != nil {
		return err
	}
	h, err := p.newScheme(dev, []byte(*p.key))
	if err != nil {
		return err
	}
	data, st, err := h.Reveal(p.addr(), *n, *epoch)
	if err != nil {
		return err
	}
	// Reveal is non-destructive; no save needed, but the ledger moved.
	if err := saveChip(*p.image, chip); err != nil {
		return err
	}
	fmt.Printf("revealed %q (hidden ECC corrected %d bits)\n", data, st.CorrectedHidden)
	return nil
}

func cmdErase(args []string) error {
	fs := flag.NewFlagSet("erase", flag.ExitOnError)
	image := fs.String("image", "", "device image path (required)")
	block := fs.Int("block", 0, "block to erase")
	fs.Parse(args)
	if *image == "" {
		return fmt.Errorf("erase: -image is required")
	}
	dev, chip, err := loadDevice(*image)
	if err != nil {
		return err
	}
	if err := dev.EraseBlock(*block); err != nil {
		return fmt.Errorf("erase: %w", err)
	}
	if err := saveChip(*image, chip); err != nil {
		return err
	}
	fmt.Printf("erased block %d (PEC now %d); any hidden payloads in it are gone\n", *block, dev.PEC(*block))
	return nil
}

func cmdProbe(args []string) error {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	p := pageFlags(fs, false)
	fs.Parse(args)
	if err := p.validate(false); err != nil {
		return err
	}
	dev, _, err := loadDevice(*p.image)
	if err != nil {
		return err
	}
	levels, err := dev.ProbePage(p.addr())
	if err != nil {
		return err
	}
	erased := stats.NewHistogram(0, 256, 256)
	programmed := stats.NewHistogram(0, 256, 256)
	ref := dev.Model().ReadRef
	for _, v := range levels {
		if float64(v) < ref {
			erased.Add(float64(v))
		} else {
			programmed.Add(float64(v))
		}
	}
	fmt.Printf("voltage probe of %v (%d cells):\n", p.addr(), len(levels))
	fmt.Printf("  erased     : %6d cells, mean %6.2f, p99 %6.2f\n",
		erased.Total(), erased.Mean(), erased.Quantile(0.99))
	fmt.Printf("  programmed : %6d cells, mean %6.2f, p01 %6.2f\n",
		programmed.Total(), programmed.Mean(), programmed.Quantile(0.01))
	return nil
}

// statsSchema identifies the stats -json document shape; bumped on
// incompatible changes so scrapers can reject documents they do not
// understand instead of misparsing them.
const statsSchema = "stashflash-stashctl-stats/v1"

// statsDoc is the JSON document "stats -json" emits: device inventory,
// the ledger persisted in the image (cumulative across invocations), and
// the observability snapshot of this invocation's operations.
type statsDoc struct {
	Schema    string       `json:"schema"`
	Model     string       `json:"model"`
	Blocks    int          `json:"blocks"`
	Pages     int          `json:"pages_per_block"`
	PageBytes int          `json:"page_bytes"`
	MaxPEC    int          `json:"max_pec"`
	RatedPEC  int          `json:"rated_pec"`
	BadBlocks []int        `json:"bad_blocks,omitempty"`
	Ledger    nand.Ledger  `json:"ledger"`
	Metrics   obs.Snapshot `json:"metrics"`
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	image := fs.String("image", "", "device image path (required)")
	asJSON := fs.Bool("json", false, "emit the stats document as JSON (inventory, ledger, metrics snapshot)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address until interrupted")
	fs.Parse(args)
	if *image == "" {
		return fmt.Errorf("stats: -image is required")
	}
	dev, _, err := loadDevice(*image)
	if err != nil {
		return err
	}
	m := dev.Model()
	l := dev.Ledger()
	maxPEC := 0
	for b := 0; b < m.Blocks; b++ {
		if p := dev.PEC(b); p > maxPEC {
			maxPEC = p
		}
	}
	if *asJSON {
		doc := statsDoc{
			Schema:    statsSchema,
			Model:     m.Name,
			Blocks:    m.Blocks,
			Pages:     m.PagesPerBlock,
			PageBytes: m.PageBytes,
			MaxPEC:    maxPEC,
			RatedPEC:  m.RatedPEC,
			BadBlocks: dev.GrownBadBlocks(),
			Ledger:    l,
			Metrics:   metrics.Snapshot(),
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		fmt.Printf("model      : %s\n", m.Name)
		fmt.Printf("geometry   : %d blocks x %d pages x %d bytes (%.1f MiB)\n",
			m.Blocks, m.PagesPerBlock, m.PageBytes, float64(m.TotalBytes())/(1<<20))
		fmt.Printf("max PEC    : %d (rated %d)\n", maxPEC, m.RatedPEC)
		fmt.Printf("ops        : %d reads, %d programs, %d erases, %d partial programs, %d probes\n",
			l.Reads, l.Programs, l.Erases, l.PartialPrograms, l.Probes)
		fmt.Printf("bus time   : %v   energy: %.1f mJ\n", l.Time, l.EnergyUJ/1000)
	}
	if *debugAddr != "" {
		ln, err := obs.ServeDebug(*debugAddr, metrics)
		if err != nil {
			return fmt.Errorf("stats: debug server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "stats: debug server on http://%s/debug/ — interrupt to exit\n", ln.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return nil
}
