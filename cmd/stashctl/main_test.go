package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd builds the binary and drives a full hide/reveal session
// against a device image file, the way a user would.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "stashctl")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	img := filepath.Join(dir, "dev.img")

	run := func(wantOK bool, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if (err == nil) != wantOK {
			t.Fatalf("stashctl %v: err=%v\n%s", args, err, out)
		}
		return string(out)
	}

	run(true, "init", "-image", img, "-blocks", "8", "-pages", "8", "-pagebytes", "2040")
	if _, err := os.Stat(img); err != nil {
		t.Fatalf("image not created: %v", err)
	}

	run(true, "write", "-image", img, "-block", "0", "-page", "0", "-rand", "-seed", "7")
	run(true, "hide", "-image", img, "-key", "hunter2", "-block", "0", "-page", "0", "-msg", "attack at dawn")

	out := run(true, "reveal", "-image", img, "-key", "hunter2", "-block", "0", "-page", "0", "-n", "14")
	if !strings.Contains(out, "attack at dawn") {
		t.Fatalf("reveal output missing payload: %s", out)
	}

	// The wrong key must not recover the message.
	wrong, err := exec.Command(bin, "reveal", "-image", img, "-key", "nope", "-block", "0", "-page", "0", "-n", "14").CombinedOutput()
	if err == nil && strings.Contains(string(wrong), "attack at dawn") {
		t.Fatalf("wrong key revealed the message: %s", wrong)
	}

	out = run(true, "probe", "-image", img, "-block", "0", "-page", "0")
	if !strings.Contains(out, "erased") || !strings.Contains(out, "programmed") {
		t.Fatalf("probe output malformed: %s", out)
	}

	out = run(true, "stats", "-image", img)
	if !strings.Contains(out, "geometry") {
		t.Fatalf("stats output malformed: %s", out)
	}

	// The JSON stats document must self-identify its schema so scrapers
	// can detect incompatible shape changes.
	out = run(true, "stats", "-image", img, "-json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stats -json is not valid JSON: %v\n%s", err, out)
	}
	if doc["schema"] != statsSchema {
		t.Fatalf("stats -json schema = %v, want %q", doc["schema"], statsSchema)
	}
	if inner, ok := doc["metrics"].(map[string]any); !ok || inner["schema"] == nil {
		t.Fatalf("embedded metrics snapshot lost its schema: %v", doc["metrics"])
	}

	run(true, "erase", "-image", img, "-block", "0")
	run(true, "write", "-image", img, "-block", "0", "-page", "0", "-rand", "-seed", "8")
	gone, err := exec.Command(bin, "reveal", "-image", img, "-key", "hunter2", "-block", "0", "-page", "0", "-n", "14").CombinedOutput()
	if err == nil && strings.Contains(string(gone), "attack at dawn") {
		t.Fatalf("message survived an erase: %s", gone)
	}

	// Bad invocations fail cleanly.
	run(false, "init")
	run(false, "frobnicate")
	run(false, "hide", "-image", img, "-block", "0", "-page", "0", "-msg", "x") // missing key
	run(false, "reveal", "-image", img, "-key", "k", "-block", "0", "-page", "0")
}
