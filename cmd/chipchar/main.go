// Command chipchar characterises simulated NAND chips the way §4 of the
// paper characterises its hardware: program pseudorandom data, probe every
// cell, and report the per-state voltage distributions across samples and
// wear levels.
//
// Usage:
//
//	chipchar [-model a|b] [-samples 4] [-pec 0,1000,2000,3000] [-pagebytes 4512] [-pages 8] [-backend direct|onfi] [-csv]
//
// -backend=onfi drives every operation through the bus-level command
// adapter (internal/onfi) instead of direct simulator calls; the
// reported distributions are bit-identical either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stashflash/internal/nand"
	"stashflash/internal/onfi"
	"stashflash/internal/stats"
	"stashflash/internal/tester"
)

func main() {
	model := flag.String("model", "a", "chip model: a or b")
	samples := flag.Int("samples", 4, "number of chip samples")
	pecList := flag.String("pec", "0,1000,2000,3000", "comma-separated PEC levels")
	pageBytes := flag.Int("pagebytes", 4512, "bytes per page")
	pages := flag.Int("pages", 8, "pages per block")
	seed := flag.Uint64("seed", 1, "base seed")
	backend := flag.String("backend", "", "device backend: direct (default) or onfi (bus command adapter)")
	csv := flag.Bool("csv", false, "dump full histograms as CSV to stdout")
	flag.Parse()

	if *backend != "" && *backend != "direct" && *backend != "onfi" {
		fmt.Fprintf(os.Stderr, "chipchar: unknown backend %q (direct, onfi)\n", *backend)
		os.Exit(2)
	}

	var base nand.Model
	switch *model {
	case "a":
		base = nand.ModelA()
	case "b":
		base = nand.ModelB()
	default:
		fmt.Fprintf(os.Stderr, "chipchar: unknown model %q\n", *model)
		os.Exit(2)
	}
	pecs, err := parseInts(*pecList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chipchar:", err)
		os.Exit(2)
	}
	m := base.ScaleGeometry(len(pecs)+1, *pages, *pageBytes)

	fmt.Printf("# chip characterisation: %s, %d samples, %d pages x %d bytes per block\n",
		base.Name, *samples, *pages, *pageBytes)
	fmt.Printf("%-8s %-6s %-12s %-12s %-12s %-12s %-10s\n",
		"sample", "PEC", "erased mean", "erased p99", "prog mean", "prog p01", "tail>=34")

	var curves []curve
	for sm := 0; sm < *samples; sm++ {
		chip := nand.NewChip(m, *seed+uint64(sm)*1009)
		var dev nand.LabDevice = chip
		if *backend == "onfi" {
			dev = onfi.NewDevice(chip)
		}
		ts := tester.New(dev, *seed+uint64(sm))
		for bi, pec := range pecs {
			if err := ts.CycleTo(bi, pec); err != nil {
				fmt.Fprintln(os.Stderr, "chipchar:", err)
				os.Exit(1)
			}
			if _, err := ts.ProgramRandomBlock(bi); err != nil {
				fmt.Fprintln(os.Stderr, "chipchar:", err)
				os.Exit(1)
			}
			erased, programmed, err := ts.BlockDistribution(bi)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chipchar:", err)
				os.Exit(1)
			}
			tail := 0
			for lvl := 34; lvl < erased.Bins(); lvl++ {
				tail += erased.Count(lvl)
			}
			fmt.Printf("%-8d %-6d %-12.2f %-12.2f %-12.2f %-12.2f %-10s\n",
				sm+1, pec,
				erased.Mean(), erased.Quantile(0.99),
				programmed.Mean(), programmed.Quantile(0.01),
				fmt.Sprintf("%.2f%%", 100*float64(tail)/float64(erased.Total())))
			if *csv {
				curves = append(curves,
					curve{fmt.Sprintf("s%d-pec%d-erased", sm+1, pec), erased},
					curve{fmt.Sprintf("s%d-pec%d-programmed", sm+1, pec), programmed})
			}
			if err := ts.Device().DropBlockState(bi); err != nil {
				fmt.Fprintln(os.Stderr, "chipchar:", err)
				os.Exit(1)
			}
		}
	}
	if *csv {
		fmt.Println("\nlevel," + joinLabels(curves))
		for lvl := 0; lvl < 256; lvl++ {
			row := []string{strconv.Itoa(lvl)}
			for _, c := range curves {
				row = append(row, fmt.Sprintf("%.6f", c.hist.Fraction(lvl)*100))
			}
			fmt.Println(strings.Join(row, ","))
		}
	}
}

// curve pairs a label with a distribution for CSV output.
type curve struct {
	label string
	hist  *stats.Histogram
}

func joinLabels(cs []curve) string {
	var labels []string
	for _, c := range cs {
		labels = append(labels, c.label)
	}
	return strings.Join(labels, ",")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad PEC value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no PEC levels given")
	}
	return out, nil
}
