// Package stashflash is a Go reproduction of "Stash in a Flash" (Zuck,
// Li, Bruck, Porter, Tsafrir; FAST 2018): hiding data in the analog
// voltage levels of NAND flash cells.
//
// The package is the stable public surface over the full system:
//
//   - a voltage-level NAND chip simulator standing in for the paper's
//     hardware testbed (see DESIGN.md for the substitution argument);
//   - VT-HI, the paper's hiding scheme: keyed cell selection, encrypted
//     and ECC-protected payloads, partial-programming encode, single-read
//     decode;
//   - PT-HI, the prior-art baseline, for comparison;
//   - an FTL and a steganographic hidden volume (§9.2), and a
//     watermarking/provenance application (§9.1);
//   - the experiment harness regenerating every table and figure of the
//     paper's evaluation (cmd/experiments, bench_test.go).
//
// Quick start:
//
//	dev := stashflash.OpenVendorA(42)
//	hider, _ := dev.NewHider([]byte("secret"), stashflash.Standard)
//	addr := stashflash.PageAddr{Block: 0, Page: 0}
//	hider.WritePage(addr, publicData)
//	hider.Hide(addr, []byte("hidden"), 0)
//	msg, _, _ := hider.Reveal(addr, 6, 0)
package stashflash

import (
	"fmt"

	"stashflash/internal/core/vthi"
	"stashflash/internal/fleet"
	"stashflash/internal/nand"
	"stashflash/internal/obs"
	"stashflash/internal/onfi"
	"stashflash/internal/stegfs"
	"stashflash/internal/watermark"
)

// PageAddr identifies a page on a device.
type PageAddr = nand.PageAddr

// Model parameterises a simulated chip family.
type Model = nand.Model

// Hider is the VT-HI pipeline bound to one device and master secret.
type Hider = vthi.Hider

// HideStats and RevealStats report embedding/extraction costs.
type (
	HideStats   = vthi.HideStats
	RevealStats = vthi.RevealStats
)

// Volume is a steganographic hidden volume (§9.2 basic design).
type Volume = stegfs.Volume

// StripeGeometry shapes RAID-like hiding across pages (§8): a payload
// split over Data shards plus Parity recoverable page losses. Used with
// Hider.HideStriped / Hider.RevealStriped.
type StripeGeometry = vthi.StripeGeometry

// Marker embeds and verifies provenance watermarks (§9.1).
type Marker = watermark.Marker

// Record is a provenance statement embedded by a Marker.
type Record = watermark.Record

// ConfigKind selects a VT-HI operating point.
type ConfigKind int

const (
	// Standard is the paper's evaluated configuration for unmodified
	// devices: Vth 34, 256 hidden cells/page, ten PP steps, interval 1.
	Standard ConfigKind = iota
	// Enhanced is the vendor-supported 9x-capacity configuration of §8.
	Enhanced
	// Robust is Standard hardened for live-system use (interference and
	// wear compensation plus a guard band); this reproduction's
	// extension, used by the hidden volume.
	Robust
)

func (k ConfigKind) config() (vthi.Config, error) {
	switch k {
	case Standard:
		return vthi.StandardConfig(), nil
	case Enhanced:
		return vthi.EnhancedConfig(), nil
	case Robust:
		return vthi.RobustConfig(), nil
	default:
		return vthi.Config{}, fmt.Errorf("stashflash: unknown config kind %d", int(k))
	}
}

// String names the configuration.
func (k ConfigKind) String() string {
	switch k {
	case Standard:
		return "standard"
	case Enhanced:
		return "enhanced"
	case Robust:
		return "robust"
	default:
		return fmt.Sprintf("ConfigKind(%d)", int(k))
	}
}

// Device is one flash package, reached through any nand.LabDevice
// backend: the direct simulator chip (Open) or the bus-level ONFI
// command adapter (OpenONFI). Every pipeline built from a Device —
// hider, marker, volume — sees only the device interface, so the two
// backends are interchangeable and bit-identical.
type Device struct {
	dev nand.LabDevice
}

// VendorA returns the primary chip model of the paper (8 GB, 18048-byte
// pages). Pair with Model.ScaleGeometry for smaller simulations.
func VendorA() Model { return nand.ModelA() }

// VendorB returns the second-vendor model used by the paper's
// applicability experiment (16 GB, 18256-byte pages).
func VendorB() Model { return nand.ModelB() }

// Open simulates a chip of the given model; distinct seeds model distinct
// physical samples. The chip is driven directly.
func Open(m Model, seed uint64) *Device {
	return &Device{dev: nand.NewChip(m, seed)}
}

// OpenONFI simulates a chip of the given model and drives every
// operation through the ONFI bus command adapter (internal/onfi)
// instead of direct calls: reads, programs, erases and the vendor
// extensions all travel as command/address/data cycles. Results are
// bit-identical to Open with the same model and seed.
func OpenONFI(m Model, seed uint64) *Device {
	return &Device{dev: onfi.NewDevice(nand.NewChip(m, seed))}
}

// OpenVendorA opens a vendor-A chip scaled to a laptop-friendly geometry
// (64 blocks of 16 pages, 4512-byte pages). Use Open(VendorA(), seed) for
// the full 8 GB part.
func OpenVendorA(seed uint64) *Device {
	return Open(nand.ModelA().ScaleGeometry(64, 16, 4512), seed)
}

// OpenVendorB is OpenVendorA for the second vendor model.
func OpenVendorB(seed uint64) *Device {
	return Open(nand.ModelB().ScaleGeometry(64, 16, 4564), seed)
}

// Dev exposes the underlying lab device for advanced use (probing,
// characterisation, stress and retention experiments). The concrete
// type depends on how the Device was opened: a direct chip for Open, a
// bus command adapter for OpenONFI.
func (d *Device) Dev() nand.LabDevice { return d.dev }

// Metrics aggregates per-operation counters, log-2 latency histograms,
// typed-error tallies and per-block wear/read tallies across every
// device wrapped with WithObservability. Safe for concurrent use; see
// MetricsSnapshot for the exported view.
type Metrics = obs.Collector

// MetricsSnapshot is the JSON-exportable state of a Metrics collector
// (the schema cmd/experiments -metricsjson emits; see EXPERIMENTS.md).
type MetricsSnapshot = obs.Snapshot

// NewMetrics builds a metrics collector. traceCycles > 0 additionally
// retains the last traceCycles ONFI bus cycles of any wrapped bus-backed
// device (OpenONFI) in the snapshot; 0 disables tracing.
func NewMetrics(traceCycles int) *Metrics { return obs.NewCollector(traceCycles) }

// WithObservability returns a view of the device whose every operation
// records into m. The instrumented view is results-transparent — all
// data, errors and state are identical to the unwrapped device — so it
// can wrap any backend at any time; wear/latency observed through it
// lands in m.Snapshot(). The original Device remains usable, but
// operations issued through it bypass recording.
func (d *Device) WithObservability(m *Metrics) *Device {
	return &Device{dev: m.Wrap(d.dev)}
}

// Geometry returns the device layout.
func (d *Device) Geometry() nand.Geometry { return d.dev.Geometry() }

// EraseBlock erases a block, destroying any hidden payloads in it. On a
// fault-injected chip the erase may fail with a typed error (see
// nand.ErrEraseFailed, nand.ErrBadBlock).
func (d *Device) EraseBlock(block int) error { return d.dev.EraseBlock(block) }

// NewHider builds a VT-HI pipeline on the device with the given master
// secret and operating point.
func (d *Device) NewHider(master []byte, kind ConfigKind) (*Hider, error) {
	cfg, err := kind.config()
	if err != nil {
		return nil, err
	}
	return vthi.NewHider(d.dev, master, cfg)
}

// NewMarker builds a watermarking authority on the device (§9.1).
func (d *Device) NewMarker(master []byte) (*Marker, error) {
	return watermark.New(d.dev, master, watermark.DefaultConfig())
}

// CreateVolume formats the device as a steganographic volume: a public
// encrypted block device with hiddenSectors hidden sectors inside it
// (§9.2). masterKey guards the hidden volume; publicKey encrypts the
// public one.
func (d *Device) CreateVolume(masterKey, publicKey []byte, hiddenSectors int) (*Volume, error) {
	cfg := stegfs.DefaultConfig(d.dev.Geometry())
	if hiddenSectors > 0 {
		cfg.HiddenSectors = hiddenSectors
	}
	return stegfs.Create(d.dev, masterKey, publicKey, cfg)
}

// Fleet is a sharded array of simulated chips behind one façade: every
// chip gets a private command-queue goroutine (honouring the device
// single-goroutine contract), per-chip streams derive deterministically
// from one seed, and chips that die under fault injection degrade to
// typed errors with spare remapping — never silent corruption. It is the
// device substrate of the stashd service (cmd/stashd).
type Fleet = fleet.Fleet

// FleetConfig sizes and seeds a Fleet.
type FleetConfig = fleet.Config

// ShardStatus is one fleet shard's routing and health view.
type ShardStatus = fleet.ShardStatus

// FleetBatching opts a Fleet's batch façade into the per-shard
// coalescer: concurrent tenants' page operations merge into one queue
// crossing per chip turn, bit-identical to the unbatched path (results
// depend only on arrival order, which coalescing preserves).
type FleetBatching = fleet.Batching

// FleetStats receives fleet-level scheduling counters (admissions,
// rejects, queue crossings, batch occupancy) when wired into
// FleetConfig.Stats; FleetSnapshot is its atomic read.
type (
	FleetStats    = obs.FleetStats
	FleetSnapshot = obs.FleetSnapshot
)

// Typed fleet errors; match with errors.Is.
var (
	// ErrShardDegraded reports that a shard's chip died; payloads stored
	// on it are lost and (when a spare was free) the shard now runs on a
	// fresh chip.
	ErrShardDegraded = fleet.ErrShardDegraded
	// ErrFleetExhausted reports a shard out of service: its chip died
	// with no spare chips left.
	ErrFleetExhausted = fleet.ErrFleetExhausted
	// ErrFleetOverloaded reports a submission refused by admission
	// control (the per-shard or fleet-wide inflight budget was
	// exhausted); back off and retry. stashd maps it to HTTP 429.
	ErrFleetOverloaded = fleet.ErrOverloaded
)

// NewFleet builds a sharded chip fleet and starts its per-chip
// goroutines; callers must Close it.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// RestoreFleet rebuilds a fleet from a directory written by Fleet.Save:
// same chip images, same shard map, same derived seed streams.
func RestoreFleet(cfg FleetConfig, dir string) (*Fleet, error) { return fleet.Restore(cfg, dir) }

// HasFleetState reports whether dir holds a restorable fleet image.
func HasFleetState(dir string) bool { return fleet.HasState(dir) }

// CapacityReport summarises hidden capacity for a configuration on the
// full-size vendor part.
type CapacityReport = vthi.CapacityReport

// PlanCapacity reports hidden capacity for an operating point on a model.
func PlanCapacity(m Model, kind ConfigKind) (CapacityReport, error) {
	cfg, err := kind.config()
	if err != nil {
		return CapacityReport{}, err
	}
	return vthi.PlanCapacity(m, cfg)
}
