module stashflash

go 1.22
