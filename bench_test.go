package stashflash

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact, backed by internal/experiments)
// and measures the library's own hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benches execute the full experiment per iteration and
// print the headline tables on the first iteration; wall-clock time per
// iteration is the cost of regenerating that artifact at CI scale. Use
// cmd/experiments -scale paper for paper-sized sample counts.

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"testing"

	"stashflash/internal/experiments"
)

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	s := experiments.CIScale()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if _, dup := printOnce.LoadOrStore(id, true); !dup {
			fmt.Fprintln(os.Stderr)
			r.WriteSummary(os.Stderr)
		}
	}
}

// --- one benchmark per paper artifact (see DESIGN.md §4) ---

func BenchmarkFig1SLCvsMLC(b *testing.B)          { runExperiment(b, "fig1") }
func BenchmarkFig2Variability(b *testing.B)       { runExperiment(b, "fig2") }
func BenchmarkFig3Wear(b *testing.B)              { runExperiment(b, "fig3") }
func BenchmarkFig5HiddenEncoding(b *testing.B)    { runExperiment(b, "fig5") }
func BenchmarkFig6BERvsPPSteps(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7BERvsInterval(b *testing.B)     { runExperiment(b, "fig7") }
func BenchmarkFig8DistributionShift(b *testing.B) { runExperiment(b, "fig8") }
func BenchmarkFig9Indistinguishable(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10SVM(b *testing.B)              { runExperiment(b, "fig10") }
func BenchmarkFig11Retention(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkFig12SVMEnhanced(b *testing.B)      { runExperiment(b, "fig12") }
func BenchmarkTable1Comparison(b *testing.B)      { runExperiment(b, "tbl1") }
func BenchmarkThroughput(b *testing.B)            { runExperiment(b, "thru") }
func BenchmarkEnergy(b *testing.B)                { runExperiment(b, "energy") }
func BenchmarkWearAmplification(b *testing.B)     { runExperiment(b, "wear") }
func BenchmarkCapacity(b *testing.B)              { runExperiment(b, "cap") }
func BenchmarkReliabilityVsPEC(b *testing.B)      { runExperiment(b, "relia") }
func BenchmarkSecondVendor(b *testing.B)          { runExperiment(b, "vendor2") }
func BenchmarkPublicInterference(b *testing.B)    { runExperiment(b, "pubber") }
func BenchmarkSnapshotAdversary(b *testing.B)     { runExperiment(b, "snapshot") }
func BenchmarkSummaryStatSVM(b *testing.B)        { runExperiment(b, "sumstat") }
func BenchmarkPageLevelSVM(b *testing.B)          { runExperiment(b, "fig10page") }
func BenchmarkFaultRecovery(b *testing.B)         { runExperiment(b, "faults") }

// --- library hot paths ---

func benchDevice(b *testing.B) (*Device, *Hider) {
	b.Helper()
	dev := OpenVendorA(12345)
	h, err := dev.NewHider([]byte("bench key"), Robust)
	if err != nil {
		b.Fatal(err)
	}
	return dev, h
}

func benchPublic(h *Hider, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 0))
	p := make([]byte, h.PublicDataBytes())
	for i := range p {
		p[i] = byte(rng.IntN(256))
	}
	return p
}

// BenchmarkWritePage measures public page writes through the VT-HI public
// ECC layout (RS encode + simulated program).
func BenchmarkWritePage(b *testing.B) {
	dev, h := benchDevice(b)
	pub := benchPublic(h, 1)
	g := dev.Geometry()
	if err := dev.EraseBlock(0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pub)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := (i / g.PagesPerBlock) % g.Blocks
		page := i % g.PagesPerBlock
		if page == 0 && i > 0 {
			// Erase is block maintenance, not part of the per-page write
			// path; keep it out of the ns/op and MB/s accounting.
			b.StopTimer()
			if err := dev.EraseBlock(block); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := h.WritePage(PageAddr{Block: block, Page: page}, pub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadPublic measures public reads with RS correction.
func BenchmarkReadPublic(b *testing.B) {
	dev, h := benchDevice(b)
	pub := benchPublic(h, 2)
	addr := PageAddr{Block: 0, Page: 0}
	if err := h.WritePage(addr, pub); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pub)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.ReadPublic(addr); err != nil {
			b.Fatal(err)
		}
	}
	_ = dev
}

// BenchmarkHide measures the full Algorithm 1 encode on one page
// (selection, encryption, BCH, PP loop) per hidden payload.
func BenchmarkHide(b *testing.B) { benchHide(b, OpenVendorA(12345)) }

// BenchmarkHideDirect and BenchmarkHideONFI measure the same encode over
// the two device backends; the delta is the pure cost of routing every
// operation through bus command cycles (see BENCH_device.json for the
// whole-experiment comparison). The hidden bits produced are identical.
func BenchmarkHideDirect(b *testing.B) { benchHide(b, OpenVendorA(12345)) }

func BenchmarkHideONFI(b *testing.B) {
	benchHide(b, OpenONFI(VendorA().ScaleGeometry(64, 16, 4512), 12345))
}

// BenchmarkHideObserved is BenchmarkHideDirect behind the observability
// wrapper; the delta against HideDirect is the full metrics-recording
// overhead on the encode hot path (budget: <= 5%, see ISSUE/DESIGN §12).
func BenchmarkHideObserved(b *testing.B) {
	benchHide(b, OpenVendorA(12345).WithObservability(NewMetrics(0)))
}

func benchHide(b *testing.B, dev *Device) {
	b.Helper()
	h, err := dev.NewHider([]byte("bench key"), Robust)
	if err != nil {
		b.Fatal(err)
	}
	pub := benchPublic(h, 3)
	secret := make([]byte, h.HiddenPayloadBytes())
	g := dev.Geometry()
	if err := dev.EraseBlock(0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(secret)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := (i / g.PagesPerBlock) % g.Blocks
		page := i % g.PagesPerBlock
		if page == 0 && i > 0 {
			// Pre-erased before ResetTimer for i==0; wrapping the erase at
			// every later block boundary keeps SetBytes throughput a pure
			// measure of the Algorithm 1 encode path.
			b.StopTimer()
			if err := dev.EraseBlock(block); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := h.WriteAndHide(PageAddr{Block: block, Page: page}, pub, secret, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReveal measures the single-read decode path (read-ref shift,
// BCH correction, decryption).
func BenchmarkReveal(b *testing.B) {
	dev, h := benchDevice(b)
	pub := benchPublic(h, 4)
	secret := make([]byte, h.HiddenPayloadBytes())
	addr := PageAddr{Block: 0, Page: 0}
	if _, err := h.WriteAndHide(addr, pub, secret, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(secret)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.Reveal(addr, len(secret), 0); err != nil {
			b.Fatal(err)
		}
	}
	_ = dev
}

// BenchmarkProbePage measures the adversary's per-cell voltage probe.
func BenchmarkProbePage(b *testing.B) {
	dev, h := benchDevice(b)
	addr := PageAddr{Block: 0, Page: 0}
	if err := h.WritePage(addr, benchPublic(h, 5)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(dev.Geometry().CellsPerPage()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Dev().ProbePage(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFTLWriteThroughVolume measures public sector writes through the
// full stack: encryption, RS layout, FTL mapping, GC when needed.
func BenchmarkFTLWriteThroughVolume(b *testing.B) {
	dev := OpenVendorA(777)
	vol, err := dev.CreateVolume([]byte("hk"), []byte("pk"), 8)
	if err != nil {
		b.Fatal(err)
	}
	sector := make([]byte, vol.PublicSectorBytes())
	b.SetBytes(int64(len(sector)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vol.PublicWrite(i%vol.PublicCapacity(), sector); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHiddenVolumeWrite measures hidden sector writes (cover rewrite
// plus voltage-level embed).
func BenchmarkHiddenVolumeWrite(b *testing.B) {
	dev := OpenVendorA(778)
	vol, err := dev.CreateVolume([]byte("hk"), []byte("pk"), 8)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, vol.HiddenSectorBytes())
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vol.HiddenWrite(1+i%vol.HiddenCapacity(), payload); err != nil {
			b.Fatal(err)
		}
	}
}
