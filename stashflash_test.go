package stashflash

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

func randomPublic(t *testing.T, h *Hider, seed uint64) []byte {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	b := make([]byte, h.PublicDataBytes())
	for i := range b {
		b[i] = byte(rng.IntN(256))
	}
	return b
}

func TestFacadeQuickstartFlow(t *testing.T) {
	dev := OpenVendorA(42)
	hider, err := dev.NewHider([]byte("secret"), Robust)
	if err != nil {
		t.Fatal(err)
	}
	addr := PageAddr{Block: 0, Page: 0}
	if err := hider.WritePage(addr, randomPublic(t, hider, 1)); err != nil {
		t.Fatal(err)
	}
	secret := []byte("hidden")
	if _, err := hider.Hide(addr, secret, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := hider.Reveal(addr, len(secret), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("revealed %q", got)
	}
}

func TestFacadeConfigKinds(t *testing.T) {
	for _, k := range []ConfigKind{Standard, Enhanced, Robust} {
		if _, err := k.config(); err != nil {
			t.Errorf("%v: %v", k, err)
		}
		if k.String() == "" {
			t.Errorf("%v has empty name", k)
		}
	}
	bad := ConfigKind(99)
	if _, err := bad.config(); err == nil {
		t.Error("invalid kind accepted")
	}
	dev := OpenVendorA(1)
	if _, err := dev.NewHider([]byte("k"), ConfigKind(99)); err == nil {
		t.Error("NewHider accepted invalid kind")
	}
}

func TestFacadeEraseDestroysHidden(t *testing.T) {
	dev := OpenVendorA(7)
	hider, err := dev.NewHider([]byte("secret"), Robust)
	if err != nil {
		t.Fatal(err)
	}
	addr := PageAddr{Block: 1, Page: 0}
	if err := hider.WritePage(addr, randomPublic(t, hider, 2)); err != nil {
		t.Fatal(err)
	}
	secret := []byte("short lived")
	if _, err := hider.Hide(addr, secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.EraseBlock(1); err != nil {
		t.Fatal(err)
	}
	if err := hider.WritePage(addr, randomPublic(t, hider, 3)); err != nil {
		t.Fatal(err)
	}
	got, _, err := hider.Reveal(addr, len(secret), 0)
	if err == nil && bytes.Equal(got, secret) {
		t.Fatal("hidden data survived erase")
	}
}

func TestFacadeVolume(t *testing.T) {
	dev := OpenVendorA(9)
	vol, err := dev.CreateVolume([]byte("hidden-key"), []byte("public-key"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if vol.HiddenCapacity() != 7 {
		t.Fatalf("hidden capacity = %d", vol.HiddenCapacity())
	}
	if err := vol.HiddenWrite(1, []byte("vault")); err != nil {
		t.Fatal(err)
	}
	got, err := vol.HiddenRead(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("vault")) {
		t.Fatalf("hidden read %q", got[:5])
	}
}

func TestFacadeMarker(t *testing.T) {
	dev := OpenVendorA(11)
	mk, err := dev.NewMarker([]byte("authority"))
	if err != nil {
		t.Fatal(err)
	}
	addr := PageAddr{Block: 0, Page: 0}
	pub := make([]byte, mk.Hider().PublicDataBytes())
	rng := rand.New(rand.NewPCG(4, 4))
	for i := range pub {
		pub[i] = byte(rng.IntN(256))
	}
	rec := Record{ObjectID: 7, Issuer: 1, Serial: 2}
	if err := mk.EmbedWithData(addr, pub, rec, 0); err != nil {
		t.Fatal(err)
	}
	got, err := mk.Verify(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("verified %+v", got)
	}
}

func TestFacadeCapacityPlanning(t *testing.T) {
	std, err := PlanCapacity(VendorA(), Standard)
	if err != nil {
		t.Fatal(err)
	}
	enh, err := PlanCapacity(VendorA(), Enhanced)
	if err != nil {
		t.Fatal(err)
	}
	if enh.PayloadBitsPerPage <= 8*std.PayloadBitsPerPage {
		t.Errorf("enhanced gain %d/%d not ~9x", enh.PayloadBitsPerPage, std.PayloadBitsPerPage)
	}
	if _, err := PlanCapacity(VendorB(), Standard); err != nil {
		t.Errorf("vendor B: %v", err)
	}
}

func TestFacadeModels(t *testing.T) {
	if VendorA().TotalBytes() != int64(2048)*256*18048 {
		t.Error("vendor A capacity wrong")
	}
	if VendorB().PageBytes != 18256 {
		t.Error("vendor B page size wrong")
	}
	dev := OpenVendorB(1)
	if dev.Geometry().Blocks != 64 {
		t.Error("scaled open geometry wrong")
	}
}

func TestFacadeFleet(t *testing.T) {
	f, err := NewFleet(FleetConfig{
		Shards: 3,
		Spares: 1,
		Model:  VendorA().ScaleGeometry(8, 4, 512),
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Shards() != 3 || f.SparesLeft() != 1 {
		t.Fatalf("fleet sizing: shards=%d spares=%d", f.Shards(), f.SparesLeft())
	}
	data := make([]byte, f.Geometry().PageBytes)
	for i := range data {
		data[i] = byte(i)
	}
	if err := f.EraseBlock(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProgramPages(2, PageAddr{Block: 0, Page: 0}, data); err != nil {
		t.Fatal(err)
	}
	got, done, err := f.ReadPages(2, PageAddr{Block: 0, Page: 0}, 1)
	if err != nil || done != 1 || !bytes.Equal(got, data) {
		t.Fatalf("fleet round trip: done=%d err=%v", done, err)
	}
	var st []ShardStatus = f.Status()
	if len(st) != 3 || st[2].Degraded {
		t.Fatalf("status: %+v", st)
	}
	if ErrShardDegraded == nil || ErrFleetExhausted == nil {
		t.Fatal("typed fleet errors not exported")
	}
}
